// Property tests: every method must produce exactly the brute-force result
// for any (corpus, tau, sigma) — including sigma = 0 (unbounded), document
// splitting on/off, combiner on/off, and document-frequency mode.
#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/maximality.h"
#include "core/runner.h"
#include "testing/test_util.h"

namespace ngram {
namespace {

struct EquivalenceCase {
  Method method;
  uint64_t tau;
  uint32_t sigma;
  uint64_t seed;
  bool document_splits;
};

std::string CaseName(const ::testing::TestParamInfo<EquivalenceCase>& info) {
  const auto& c = info.param;
  std::string name = MethodName(c.method);
  name += "_tau" + std::to_string(c.tau);
  name += "_sigma" + std::to_string(c.sigma);
  name += "_seed" + std::to_string(c.seed);
  name += c.document_splits ? "_splits" : "_nosplits";
  for (auto& ch : name) {
    if (ch == '-') {
      ch = '_';
    }
  }
  return name;
}

class EquivalenceTest : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(EquivalenceTest, MatchesBruteForce) {
  const EquivalenceCase& c = GetParam();
  const Corpus corpus = testing::RandomCorpus(c.seed, 25, 6, 3, 12);
  const CorpusContext ctx = BuildCorpusContext(corpus);

  NgramJobOptions options = testing::TestOptions(c.method, c.tau, c.sigma);
  options.document_splits = c.document_splits;
  auto run = ComputeNgramStatistics(ctx, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  NgramStatistics expected = BruteForceCounts(corpus, c.tau, c.sigma);
  run->stats.SortCanonical();
  EXPECT_TRUE(run->stats.SameAs(expected))
      << ::testing::PrintToString(run->stats.DiffAgainst(expected));
}

std::vector<EquivalenceCase> MakeCases() {
  std::vector<EquivalenceCase> cases;
  const Method methods[] = {Method::kNaive, Method::kAprioriScan,
                            Method::kAprioriIndex, Method::kSuffixSigma};
  for (Method method : methods) {
    for (uint64_t tau : {1, 2, 5}) {
      for (uint32_t sigma : {1u, 3u, 5u, 0u}) {
        cases.push_back({method, tau, sigma, /*seed=*/41, true});
      }
    }
    // Splitting disabled, second seed.
    cases.push_back({method, 3, 4, 42, false});
    cases.push_back({method, 2, 0, 43, false});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, EquivalenceTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

// ------------------------------------------------------ document freq --

class DocFrequencyTest : public ::testing::TestWithParam<Method> {};

TEST_P(DocFrequencyTest, MatchesBruteForceDocumentFrequencies) {
  const Corpus corpus = testing::RandomCorpus(55, 20, 5, 3, 10);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramJobOptions options = testing::TestOptions(GetParam(), 2, 3);
  options.frequency_mode = FrequencyMode::kDocument;
  // Document splitting keys off *collection* unigram frequencies; keep the
  // run faithful to the df problem by disabling it.
  options.document_splits = false;
  options.use_combiner = false;
  auto run = ComputeNgramStatistics(ctx, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  NgramStatistics expected = BruteForceDocumentFrequencies(corpus, 2, 3);
  EXPECT_TRUE(run->stats.SameAs(expected))
      << ::testing::PrintToString(run->stats.DiffAgainst(expected));
}

INSTANTIATE_TEST_SUITE_P(AllMethods, DocFrequencyTest,
                         ::testing::Values(Method::kNaive,
                                           Method::kAprioriScan,
                                           Method::kAprioriIndex,
                                           Method::kSuffixSigma),
                         [](const auto& info) {
                           std::string name = MethodName(info.param);
                           for (auto& ch : name) {
                             if (ch == '-') {
                               ch = '_';
                             }
                           }
                           return name;
                         });

// ----------------------------------------------- pairwise cross-checks --

TEST(EquivalenceTest, AllMethodsAgreeOnLargerCorpus) {
  const Corpus corpus = testing::RandomCorpus(77, 120, 10, 4, 16);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramStatistics reference;
  bool have_reference = false;
  for (Method method :
       {Method::kNaive, Method::kAprioriScan, Method::kAprioriIndex,
        Method::kSuffixSigma}) {
    auto run =
        ComputeNgramStatistics(ctx, testing::TestOptions(method, 4, 6));
    ASSERT_TRUE(run.ok()) << MethodName(method);
    run->stats.SortCanonical();
    if (!have_reference) {
      reference = std::move(run->stats);
      have_reference = true;
      EXPECT_GT(reference.size(), 0u);
    } else {
      EXPECT_TRUE(run->stats.SameAs(reference)) << MethodName(method);
    }
  }
}

TEST(EquivalenceTest, SpillPathsDoNotChangeResults) {
  const Corpus corpus = testing::RandomCorpus(88, 60, 6, 3, 12);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  for (Method method : {Method::kNaive, Method::kSuffixSigma}) {
    NgramJobOptions big = testing::TestOptions(method, 2, 4);
    big.sort_buffer_bytes = 64 << 20;
    NgramJobOptions tiny = testing::TestOptions(method, 2, 4);
    tiny.sort_buffer_bytes = 2048;  // Many spills.
    auto a = ComputeNgramStatistics(ctx, big);
    auto b = ComputeNgramStatistics(ctx, tiny);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_GT(b->metrics.TotalCounter(mr::kSpillFiles), 0u);
    EXPECT_TRUE(a->stats.SameAs(b->stats)) << MethodName(method);
  }
}

TEST(EquivalenceTest, SlotCountDoesNotChangeResults) {
  const Corpus corpus = testing::RandomCorpus(99, 40, 6, 3, 12);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramStatistics reference;
  bool have_reference = false;
  for (uint32_t slots : {1u, 2u, 4u}) {
    NgramJobOptions options =
        testing::TestOptions(Method::kSuffixSigma, 2, 5);
    options.map_slots = slots;
    options.reduce_slots = slots;
    options.num_reducers = slots * 2;
    auto run = ComputeNgramStatistics(ctx, options);
    ASSERT_TRUE(run.ok());
    run->stats.SortCanonical();
    if (!have_reference) {
      reference = std::move(run->stats);
      have_reference = true;
    } else {
      EXPECT_TRUE(run->stats.SameAs(reference)) << "slots=" << slots;
    }
  }
}

TEST(EquivalenceTest, CombinerOnOffAgree) {
  const Corpus corpus = testing::RandomCorpus(101, 50, 6, 3, 12);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  for (Method method : {Method::kNaive, Method::kAprioriScan}) {
    NgramJobOptions with = testing::TestOptions(method, 3, 4);
    with.use_combiner = true;
    NgramJobOptions without = testing::TestOptions(method, 3, 4);
    without.use_combiner = false;
    auto a = ComputeNgramStatistics(ctx, with);
    auto b = ComputeNgramStatistics(ctx, without);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE(a->stats.SameAs(b->stats)) << MethodName(method);
    // The combiner reduces reduce-side input records.
    EXPECT_LE(a->metrics.TotalCounter(mr::kReduceInputRecords),
              b->metrics.TotalCounter(mr::kReduceInputRecords));
  }
}

TEST(EquivalenceTest, CompressionOnOffAgreeAcrossMethodsAndMergeFactors) {
  // compress_runs changes only the at-rest run representation; every
  // method must produce identical statistics with it on or off, across
  // bounded, small-bound, and unbounded merge fan-in, with spill-heavy
  // sort buffers so the compressed paths (spills, map-side final merges,
  // reduce-side intermediate passes) all actually run.
  const Corpus corpus = testing::RandomCorpus(99, 60, 6, 3, 12);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  for (Method method :
       {Method::kNaive, Method::kAprioriScan, Method::kAprioriIndex,
        Method::kSuffixSigma}) {
    for (uint32_t merge_factor : {2u, 16u, 0u}) {
      NgramJobOptions on = testing::TestOptions(method, 2, 4);
      on.sort_buffer_bytes = 2048;
      on.merge_factor = merge_factor;
      on.compress_runs = true;
      NgramJobOptions off = on;
      off.compress_runs = false;
      auto a = ComputeNgramStatistics(ctx, on);
      auto b = ComputeNgramStatistics(ctx, off);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_GT(a->metrics.TotalCounter(mr::kSpillFiles), 0u);
      EXPECT_TRUE(a->stats.SameAs(b->stats))
          << MethodName(method) << " merge_factor=" << merge_factor;
    }
  }
}

TEST(EquivalenceTest, EarlyShuffleOnOffAgreeAcrossMethods) {
  // The early shuffle only changes *when* intermediate merge passes run,
  // never what they produce: with spill-heavy buffers and a small merge
  // factor (so eager windows actually form and merge), every method must
  // produce identical statistics with overlap on or off.
  const Corpus corpus = testing::RandomCorpus(103, 60, 6, 3, 12);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  for (Method method :
       {Method::kNaive, Method::kAprioriScan, Method::kAprioriIndex,
        Method::kSuffixSigma}) {
    NgramJobOptions with = testing::TestOptions(method, 2, 4);
    with.sort_buffer_bytes = 2048;
    with.merge_factor = 4;
    with.shuffle_slots = 2;
    NgramJobOptions without = with;
    without.shuffle_slots = 0;
    auto a = ComputeNgramStatistics(ctx, with);
    auto b = ComputeNgramStatistics(ctx, without);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_GT(a->metrics.TotalCounter(mr::kSpillFiles), 0u);
    EXPECT_TRUE(a->stats.SameAs(b->stats)) << MethodName(method);
  }
}

TEST(EquivalenceTest, CompressionOnOffAgreeForMaximalAndClosed) {
  const Corpus corpus = testing::RandomCorpus(111, 50, 6, 3, 12);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  using Variant = Result<NgramRun> (*)(const CorpusContext&,
                                       const NgramJobOptions&);
  for (Variant variant : {static_cast<Variant>(&RunSuffixSigmaMaximal),
                          static_cast<Variant>(&RunSuffixSigmaClosed)}) {
    NgramJobOptions on = testing::TestOptions(Method::kSuffixSigma, 2, 4);
    on.sort_buffer_bytes = 2048;
    on.compress_runs = true;
    NgramJobOptions off = on;
    off.compress_runs = false;
    auto a = variant(ctx, on);
    auto b = variant(ctx, off);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    a->stats.SortCanonical();
    b->stats.SortCanonical();
    EXPECT_TRUE(a->stats.SameAs(b->stats));
  }
}

TEST(EquivalenceTest, CompressedRunsShrinkSuffixSigmaSpills) {
  // The acceptance-shaped claim: on spill-heavy SUFFIX-sigma runs —
  // rev-lex-sorted truncated suffixes whose neighbors share long byte
  // prefixes — the block format writes measurably fewer at-rest bytes
  // than the raw framing it replaces.
  const Corpus corpus = testing::RandomCorpus(123, 120, 10, 4, 16);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramJobOptions options = testing::TestOptions(Method::kSuffixSigma, 2, 5);
  options.sort_buffer_bytes = 2048;  // Many spills.
  auto run = ComputeNgramStatistics(ctx, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const uint64_t raw = run->metrics.TotalCounter(mr::kRunBytesRaw);
  const uint64_t written = run->metrics.TotalCounter(mr::kRunBytesWritten);
  ASSERT_GT(raw, 0u);
  EXPECT_LT(written, raw);
}

}  // namespace
}  // namespace ngram
