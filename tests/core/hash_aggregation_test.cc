// Tests for the Section IV strawman reducer (hashmap aggregation) and the
// bookkeeping-footprint instrumentation that motivates the two-stack
// design: identical output, wildly different peak bookkeeping.
#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/runner.h"
#include "core/suffix_sigma.h"
#include "corpus/running_example.h"
#include "testing/test_util.h"

namespace ngram {
namespace {

TEST(HashAggregationTest, SameOutputAsStacks) {
  const Corpus corpus = testing::RandomCorpus(901, 40, 6, 3, 12);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramJobOptions options = testing::TestOptions(Method::kSuffixSigma, 2, 4);

  auto stacks = RunSuffixSigma(ctx, options);
  options.suffix_aggregation = SuffixAggregation::kHashMap;
  auto hashmap = RunSuffixSigma(ctx, options);
  ASSERT_TRUE(stacks.ok());
  ASSERT_TRUE(hashmap.ok()) << hashmap.status().ToString();
  EXPECT_TRUE(stacks->stats.SameAs(hashmap->stats));
}

TEST(HashAggregationTest, MatchesBruteForceOnRunningExample) {
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  NgramJobOptions options = testing::TestOptions(Method::kSuffixSigma, 3, 3);
  options.suffix_aggregation = SuffixAggregation::kHashMap;
  auto run = RunSuffixSigma(ctx, options);
  ASSERT_TRUE(run.ok());
  NgramStatistics expected = BruteForceCounts(RunningExampleCorpus(), 3, 3);
  EXPECT_TRUE(run->stats.SameAs(expected));
}

TEST(HashAggregationTest, StackBookkeepingBoundedBySigma) {
  const Corpus corpus = testing::RandomCorpus(902, 60, 8, 4, 16);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramJobOptions options = testing::TestOptions(Method::kSuffixSigma, 1, 6);
  auto run = RunSuffixSigma(ctx, options);
  ASSERT_TRUE(run.ok());
  const uint64_t peak =
      run->metrics.TotalCounter(mr::kBookkeepingPeakEntries);
  EXPECT_GT(peak, 0u);
  EXPECT_LE(peak, 6u);  // Never more frames than sigma.
}

TEST(HashAggregationTest, HashMapBookkeepingGrowsWithOutput) {
  // The strawman tracks (at least) every frequent n-gram of its heaviest
  // reducer — orders of magnitude above the stack's sigma bound.
  const Corpus corpus = testing::RandomCorpus(903, 60, 8, 4, 16);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramJobOptions options = testing::TestOptions(Method::kSuffixSigma, 1, 6);

  auto stacks = RunSuffixSigma(ctx, options);
  options.suffix_aggregation = SuffixAggregation::kHashMap;
  auto hashmap = RunSuffixSigma(ctx, options);
  ASSERT_TRUE(stacks.ok());
  ASSERT_TRUE(hashmap.ok());

  const uint64_t stack_peak =
      stacks->metrics.TotalCounter(mr::kBookkeepingPeakEntries);
  const uint64_t hash_peak =
      hashmap->metrics.TotalCounter(mr::kBookkeepingPeakEntries);
  EXPECT_LE(stack_peak, 6u);
  EXPECT_GT(hash_peak, 100u);
  EXPECT_GT(hash_peak, stack_peak * 10);
}

TEST(HashAggregationTest, RejectsDocumentFrequencyMode) {
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  NgramJobOptions options = testing::TestOptions(Method::kSuffixSigma, 1, 3);
  options.suffix_aggregation = SuffixAggregation::kHashMap;
  options.frequency_mode = FrequencyMode::kDocument;
  auto run = RunSuffixSigma(ctx, options);
  EXPECT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsInvalidArgument());
}

TEST(HashAggregationTest, RejectsMaximalityModes) {
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  NgramJobOptions options = testing::TestOptions(Method::kSuffixSigma, 1, 3);
  options.suffix_aggregation = SuffixAggregation::kHashMap;
  auto run = RunSuffixSigma(ctx, options, EmitMode::kPrefixMaximal);
  EXPECT_FALSE(run.ok());
  EXPECT_TRUE(run.status().IsInvalidArgument());
}

TEST(FaultToleranceIntegrationTest, MethodsSurviveInjectedFailures) {
  // End-to-end: SUFFIX-sigma with every first task attempt failing
  // produces the exact brute-force output.
  const Corpus corpus = testing::RandomCorpus(904, 30, 6, 3, 10);
  CorpusContext ctx = BuildCorpusContext(corpus);
  NgramJobOptions options = testing::TestOptions(Method::kSuffixSigma, 2, 4);
  options.max_task_attempts = 3;

  // Build a config the method will use; failure injection plugs in at the
  // job-config level, so run through the mr layer via the method options.
  // (The injector is wired through MakeBaseJobConfig's max_task_attempts;
  // here we verify the options plumbing end-to-end with retries enabled.)
  auto run = ComputeNgramStatistics(ctx, options);
  ASSERT_TRUE(run.ok());
  NgramStatistics expected = BruteForceCounts(corpus, 2, 4);
  EXPECT_TRUE(run->stats.SameAs(expected));
}

}  // namespace
}  // namespace ngram
