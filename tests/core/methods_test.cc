// Per-method behaviour on the paper's running example, plus the
// method-specific cost properties the paper derives analytically.
#include <gtest/gtest.h>

#include "core/apriori_index.h"
#include "core/apriori_scan.h"
#include "core/naive.h"
#include "core/runner.h"
#include "core/suffix_sigma.h"
#include "corpus/running_example.h"
#include "testing/test_util.h"

namespace ngram {
namespace {

using testing::TestOptions;

NgramStatistics ExpectedRunningExample() {
  NgramStatistics expected;
  for (const auto& [seq, cf] : RunningExampleExpectedCounts()) {
    expected.Add(seq, cf);
  }
  expected.SortCanonical();
  return expected;
}

class RunningExampleMethodTest : public ::testing::TestWithParam<Method> {};

TEST_P(RunningExampleMethodTest, ProducesPaperOutput) {
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  const NgramJobOptions options = TestOptions(GetParam(), 3, 3);
  auto run = ComputeNgramStatistics(ctx, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  NgramStatistics expected = ExpectedRunningExample();
  EXPECT_TRUE(run->stats.SameAs(expected))
      << ::testing::PrintToString(run->stats.DiffAgainst(expected));
}

INSTANTIATE_TEST_SUITE_P(AllMethods, RunningExampleMethodTest,
                         ::testing::Values(Method::kNaive,
                                           Method::kAprioriScan,
                                           Method::kAprioriIndex,
                                           Method::kSuffixSigma),
                         [](const auto& info) {
                           std::string name = MethodName(info.param);
                           for (auto& ch : name) {
                             if (ch == '-') {
                               ch = '_';
                             }
                           }
                           return name;
                         });

TEST(NaiveMethodTest, RecordCountEqualsSumOfEmittedNgrams) {
  // Without combiner and without splits, NAIVE emits one record per n-gram
  // occurrence: sum_{|s|<=sigma} cf(s). For the running example with
  // sigma=3: 15 unigrams + 12 bigrams + 9 trigrams = 36.
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  NgramJobOptions options = TestOptions(Method::kNaive, 3, 3);
  options.use_combiner = false;
  options.document_splits = false;
  auto run = RunNaive(ctx, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->metrics.map_output_records(), 36u);
  EXPECT_EQ(run->metrics.num_jobs(), 1);
}

TEST(SuffixSigmaMethodTest, RecordCountEqualsTermOccurrences) {
  // The paper's analysis: exactly one record per term occurrence (15 for
  // the running example, splits disabled).
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  NgramJobOptions options = TestOptions(Method::kSuffixSigma, 3, 3);
  options.document_splits = false;
  auto run = RunSuffixSigma(ctx, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->metrics.map_output_records(), 15u);
  EXPECT_EQ(run->metrics.num_jobs(), 1);
}

TEST(SuffixSigmaMethodTest, TransfersFewerBytesThanNaive) {
  const Corpus corpus = testing::RandomCorpus(8, 60, 8, 4, 14);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramJobOptions options = TestOptions(Method::kSuffixSigma, 2, 5);
  options.document_splits = false;
  NgramJobOptions naive_options = options;
  naive_options.method = Method::kNaive;
  naive_options.use_combiner = false;
  auto suffix = RunSuffixSigma(ctx, options);
  auto naive = RunNaive(ctx, naive_options);
  ASSERT_TRUE(suffix.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_LT(suffix->metrics.map_output_records(),
            naive->metrics.map_output_records());
  EXPECT_LT(suffix->metrics.map_output_bytes(),
            naive->metrics.map_output_bytes());
}

TEST(AprioriScanMethodTest, OneJobPerLengthUntilEmpty) {
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  // tau=3, sigma=5: lengths 1..3 are frequent, length 4 job comes back
  // empty -> 4 jobs.
  NgramJobOptions options = TestOptions(Method::kAprioriScan, 3, 5);
  auto run = RunAprioriScan(ctx, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->metrics.num_jobs(), 4);
}

TEST(AprioriScanMethodTest, StopsAtSigmaEvenIfMoreFrequent) {
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  NgramJobOptions options = TestOptions(Method::kAprioriScan, 3, 2);
  auto run = RunAprioriScan(ctx, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->metrics.num_jobs(), 2);
  EXPECT_EQ(run->stats.MaxLength(), 2u);
}

TEST(AprioriScanMethodTest, PruningEmitsFewerRecordsThanNaive) {
  const Corpus corpus = testing::RandomCorpus(9, 60, 8, 4, 14);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramJobOptions options = TestOptions(Method::kAprioriScan, 5, 4);
  options.use_combiner = false;
  options.document_splits = false;
  NgramJobOptions naive_options = options;
  naive_options.method = Method::kNaive;
  auto scan = RunAprioriScan(ctx, options);
  auto naive = RunNaive(ctx, naive_options);
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE(naive.ok());
  // S_NP subset of S: APRIORI-SCAN can never shuffle more records.
  EXPECT_LE(scan->metrics.map_output_records(),
            naive->metrics.map_output_records());
}

TEST(AprioriScanMethodTest, DictionaryCountersRecorded) {
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  NgramJobOptions options = TestOptions(Method::kAprioriScan, 3, 3);
  auto run = RunAprioriScan(ctx, options);
  ASSERT_TRUE(run.ok());
  ASSERT_GE(run->metrics.jobs.size(), 2u);
  // Job k=2 used the dictionary of 3 frequent unigrams.
  EXPECT_EQ(run->metrics.jobs[1].Counter(kDictionaryEntries), 3u);
  EXPECT_GT(run->metrics.jobs[1].Counter(kDictionaryBytes), 0u);
}

TEST(AprioriIndexMethodTest, ProducesPositionalIndex) {
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  NgramJobOptions options = TestOptions(Method::kAprioriIndex, 3, 3);
  options.apriori_index_k = 2;
  auto result = RunAprioriIndexWithIndex(ctx, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Find <a x b> in the index: paper says d1:[0], d2:[1], d3:[2].
  const TermSequence axb = {kTermA, kTermX, kTermB};
  const PostingList* found = nullptr;
  for (const auto& [seq, list] : result->index.rows) {
    if (seq == axb) {
      found = &list;
    }
  }
  ASSERT_NE(found, nullptr);
  ASSERT_EQ(found->postings.size(), 3u);
  EXPECT_EQ(found->postings[0].doc_id, 1u);
  EXPECT_EQ(found->postings[0].positions, (std::vector<uint32_t>{0}));
  EXPECT_EQ(found->postings[1].doc_id, 2u);
  EXPECT_EQ(found->postings[1].positions, (std::vector<uint32_t>{1}));
  EXPECT_EQ(found->postings[2].doc_id, 3u);
  EXPECT_EQ(found->postings[2].positions, (std::vector<uint32_t>{2}));
}

TEST(AprioriIndexMethodTest, KBoundaryVariantsAgree) {
  const Corpus corpus = testing::RandomCorpus(10, 40, 6, 3, 10);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramStatistics reference;
  for (uint32_t k : {1u, 2u, 3u, 4u, 6u}) {
    NgramJobOptions options = TestOptions(Method::kAprioriIndex, 3, 5);
    options.apriori_index_k = k;
    auto run = RunAprioriIndex(ctx, options);
    ASSERT_TRUE(run.ok()) << "K=" << k << ": " << run.status().ToString();
    if (k == 1) {
      reference = std::move(run->stats);
      reference.SortCanonical();
    } else {
      EXPECT_TRUE(run->stats.SameAs(reference)) << "K=" << k;
    }
  }
}

TEST(AprioriIndexMethodTest, TinyReducerBudgetSpillsAndStaysCorrect) {
  const Corpus corpus = testing::RandomCorpus(11, 40, 5, 3, 10);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramJobOptions options = TestOptions(Method::kAprioriIndex, 2, 5);
  options.apriori_index_k = 2;
  options.reducer_memory_budget_bytes = 128;  // Force KV-store spill.
  auto spilled = RunAprioriIndex(ctx, options);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  options.reducer_memory_budget_bytes = 256 << 20;
  auto in_memory = RunAprioriIndex(ctx, options);
  ASSERT_TRUE(in_memory.ok());
  EXPECT_TRUE(spilled->stats.SameAs(in_memory->stats));
}

TEST(MethodsTest, EmptyCorpusYieldsEmptyStats) {
  const Corpus corpus;
  const CorpusContext ctx = BuildCorpusContext(corpus);
  for (Method method :
       {Method::kNaive, Method::kAprioriScan, Method::kAprioriIndex,
        Method::kSuffixSigma}) {
    auto run = ComputeNgramStatistics(ctx, TestOptions(method, 1, 3));
    ASSERT_TRUE(run.ok()) << MethodName(method);
    EXPECT_TRUE(run->stats.empty()) << MethodName(method);
  }
}

TEST(MethodsTest, TauAboveAllFrequenciesYieldsEmpty) {
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  for (Method method :
       {Method::kNaive, Method::kAprioriScan, Method::kAprioriIndex,
        Method::kSuffixSigma}) {
    auto run = ComputeNgramStatistics(ctx, TestOptions(method, 100, 3));
    ASSERT_TRUE(run.ok()) << MethodName(method);
    EXPECT_TRUE(run->stats.empty()) << MethodName(method);
  }
}

TEST(MethodsTest, SigmaOneGivesUnigramsOnly) {
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  for (Method method :
       {Method::kNaive, Method::kAprioriScan, Method::kAprioriIndex,
        Method::kSuffixSigma}) {
    auto run = ComputeNgramStatistics(ctx, TestOptions(method, 3, 1));
    ASSERT_TRUE(run.ok()) << MethodName(method);
    EXPECT_EQ(run->stats.size(), 3u) << MethodName(method);
    EXPECT_EQ(run->stats.MaxLength(), 1u) << MethodName(method);
  }
}

}  // namespace
}  // namespace ngram
