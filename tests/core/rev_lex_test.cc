#include "core/rev_lex.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "encoding/serde.h"
#include "util/random.h"

namespace ngram {
namespace {

int CompareSeqs(const TermSequence& a, const TermSequence& b) {
  const std::string ea = SerializeToString(a);
  const std::string eb = SerializeToString(b);
  return ReverseLexSequenceComparator::Instance()->Compare(Slice(ea),
                                                           Slice(eb));
}

/// Reference implementation of the paper's definition on decoded
/// sequences:
///   r < s <=> (|r| > |s| and s is a prefix of r) or
///             exists i: r[i] > s[i], r[j] = s[j] for j < i.
int ReferenceCompare(const TermSequence& r, const TermSequence& s) {
  const size_t n = std::min(r.size(), s.size());
  for (size_t i = 0; i < n; ++i) {
    if (r[i] != s[i]) {
      return r[i] > s[i] ? -1 : +1;
    }
  }
  if (r.size() == s.size()) {
    return 0;
  }
  return r.size() > s.size() ? -1 : +1;
}

TEST(ReverseLexTest, ExtensionsBeforePrefixes) {
  EXPECT_LT(CompareSeqs({2, 1, 1}, {2, 1}), 0);
  EXPECT_GT(CompareSeqs({2, 1}, {2, 1, 1}), 0);
  EXPECT_LT(CompareSeqs({2, 1}, {2}), 0);
}

TEST(ReverseLexTest, LargerTermsFirst) {
  EXPECT_LT(CompareSeqs({5}, {3}), 0);
  EXPECT_GT(CompareSeqs({3}, {5}), 0);
  EXPECT_LT(CompareSeqs({2, 9}, {2, 1}), 0);
}

TEST(ReverseLexTest, EqualSequences) {
  EXPECT_EQ(CompareSeqs({1, 2, 3}, {1, 2, 3}), 0);
  EXPECT_EQ(CompareSeqs({}, {}), 0);
}

TEST(ReverseLexTest, EmptySequenceSortsLast) {
  EXPECT_LT(CompareSeqs({1}, {}), 0);
  EXPECT_GT(CompareSeqs({}, {7}), 0);
}

TEST(ReverseLexTest, PaperReducerOrderForTermB) {
  // Section IV, reducer for suffixes starting with b, with ids assigned
  // alphabetically (a=1, b=2, x=3) so the paper's letter order is the id
  // order: <b x x> , <b x> , <b a x> , <b>.
  std::vector<TermSequence> suffixes = {
      {2}, {2, 1, 3}, {2, 3}, {2, 3, 3}};
  std::sort(suffixes.begin(), suffixes.end(),
            [](const TermSequence& a, const TermSequence& b) {
              return CompareSeqs(a, b) < 0;
            });
  EXPECT_EQ(suffixes[0], (TermSequence{2, 3, 3}));  // b x x
  EXPECT_EQ(suffixes[1], (TermSequence{2, 3}));     // b x
  EXPECT_EQ(suffixes[2], (TermSequence{2, 1, 3}));  // b a x
  EXPECT_EQ(suffixes[3], (TermSequence{2}));        // b
}

TEST(ReverseLexTest, MatchesReferenceOnRandomPairs) {
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    TermSequence a, b;
    const uint64_t la = rng.Uniform(6);
    const uint64_t lb = rng.Uniform(6);
    for (uint64_t j = 0; j < la; ++j) {
      a.push_back(1 + static_cast<TermId>(rng.Uniform(4)));
    }
    for (uint64_t j = 0; j < lb; ++j) {
      b.push_back(1 + static_cast<TermId>(rng.Uniform(4)));
    }
    const int got = CompareSeqs(a, b);
    const int want = ReferenceCompare(a, b);
    ASSERT_EQ(got < 0 ? -1 : (got > 0 ? 1 : 0), want)
        << SequenceToDebugString(a) << " vs " << SequenceToDebugString(b);
  }
}

TEST(ReverseLexTest, IsATotalOrder) {
  // Antisymmetry and transitivity on a fixed universe.
  std::vector<TermSequence> universe;
  for (TermId a = 1; a <= 3; ++a) {
    universe.push_back({a});
    for (TermId b = 1; b <= 3; ++b) {
      universe.push_back({a, b});
      for (TermId c = 1; c <= 3; ++c) {
        universe.push_back({a, b, c});
      }
    }
  }
  for (const auto& x : universe) {
    EXPECT_EQ(CompareSeqs(x, x), 0);
    for (const auto& y : universe) {
      const int xy = CompareSeqs(x, y);
      const int yx = CompareSeqs(y, x);
      EXPECT_EQ(xy < 0, yx > 0);
      EXPECT_EQ(xy == 0, x == y);
      for (const auto& z : universe) {
        if (xy < 0 && CompareSeqs(y, z) < 0) {
          EXPECT_LT(CompareSeqs(x, z), 0);
        }
      }
    }
  }
}

TEST(ReverseLexTest, MultiByteVarintTermsCompareNumerically) {
  // Term ids above 127 encode to multiple bytes; order must follow ids,
  // not raw bytes.
  EXPECT_LT(CompareSeqs({300}, {200}), 0);
  EXPECT_GT(CompareSeqs({127}, {128}), 0);
  EXPECT_LT(CompareSeqs({1, 70000}, {1, 69999}), 0);
}

TEST(ReverseLexTest, SortPrefixIsConsistentWithCompare) {
  // The shuffle's cached-prefix contract: differing prefixes must order
  // exactly like the full comparator (equal prefixes imply nothing).
  const auto* cmp = ReverseLexSequenceComparator::Instance();
  Rng rng(23);
  for (int i = 0; i < 20000; ++i) {
    TermSequence a, b;
    const uint64_t la = rng.Uniform(5);
    const uint64_t lb = rng.Uniform(5);
    for (uint64_t j = 0; j < la; ++j) {
      a.push_back(1 + static_cast<TermId>(rng.Uniform(200000)));
    }
    for (uint64_t j = 0; j < lb; ++j) {
      b.push_back(1 + static_cast<TermId>(rng.Uniform(200000)));
    }
    const std::string ea = SerializeToString(a);
    const std::string eb = SerializeToString(b);
    const uint64_t pa = cmp->SortPrefix(Slice(ea));
    const uint64_t pb = cmp->SortPrefix(Slice(eb));
    if (pa != pb) {
      ASSERT_EQ(pa < pb, cmp->Compare(Slice(ea), Slice(eb)) < 0)
          << SequenceToDebugString(a) << " vs " << SequenceToDebugString(b);
    }
  }
}

TEST(BytewiseSortPrefixTest, IsConsistentWithCompare) {
  const auto* cmp = mr::BytewiseComparator::Instance();
  Rng rng(29);
  for (int i = 0; i < 20000; ++i) {
    std::string a, b;
    const uint64_t la = rng.Uniform(12);
    const uint64_t lb = rng.Uniform(12);
    for (uint64_t j = 0; j < la; ++j) {
      a.push_back(static_cast<char>(rng.Uniform(4)));
    }
    for (uint64_t j = 0; j < lb; ++j) {
      b.push_back(static_cast<char>(rng.Uniform(4)));
    }
    const uint64_t pa = cmp->SortPrefix(Slice(a));
    const uint64_t pb = cmp->SortPrefix(Slice(b));
    if (pa != pb) {
      ASSERT_EQ(pa < pb, cmp->Compare(Slice(a), Slice(b)) < 0);
    }
  }
}

TEST(FirstTermPartitionerTest, DependsOnlyOnFirstTerm) {
  const auto* partitioner = FirstTermPartitioner::Instance();
  for (TermId first : {1u, 2u, 77u, 70000u}) {
    const uint32_t expected = partitioner->Partition(
        Slice(SerializeToString(TermSequence{first})), 13);
    for (TermId second : {1u, 9u, 1234u}) {
      const std::string key =
          SerializeToString(TermSequence{first, second, second + 1});
      EXPECT_EQ(partitioner->Partition(Slice(key), 13), expected);
    }
  }
}

TEST(FirstTermPartitionerTest, SpreadsAcrossPartitions) {
  const auto* partitioner = FirstTermPartitioner::Instance();
  std::vector<int> hits(8, 0);
  for (TermId t = 1; t <= 800; ++t) {
    ++hits[partitioner->Partition(
        Slice(SerializeToString(TermSequence{t})), 8)];
  }
  for (int h : hits) {
    EXPECT_GT(h, 50);  // No empty or wildly skewed partition.
  }
}

TEST(FirstTermPartitionerTest, StaysInRange) {
  const auto* partitioner = FirstTermPartitioner::Instance();
  for (TermId t = 1; t < 100; ++t) {
    const std::string key = SerializeToString(TermSequence{t});
    EXPECT_LT(partitioner->Partition(Slice(key), 3), 3u);
    EXPECT_EQ(partitioner->Partition(Slice(key), 1), 0u);
  }
}

}  // namespace
}  // namespace ngram
