#include "core/brute_force.h"

#include <gtest/gtest.h>

#include "corpus/running_example.h"
#include "testing/test_util.h"

namespace ngram {
namespace {

using testing::Seq;

TEST(BruteForceTest, RunningExampleCounts) {
  const NgramStatistics stats =
      BruteForceCounts(RunningExampleCorpus(), 3, 3);
  EXPECT_EQ(stats.size(), 6u);
  EXPECT_EQ(stats.FrequencyOf(Seq({kTermA})), 3u);
  EXPECT_EQ(stats.FrequencyOf(Seq({kTermB})), 5u);
  EXPECT_EQ(stats.FrequencyOf(Seq({kTermX})), 7u);
  EXPECT_EQ(stats.FrequencyOf(Seq({kTermA, kTermX})), 3u);
  EXPECT_EQ(stats.FrequencyOf(Seq({kTermX, kTermB})), 4u);
  EXPECT_EQ(stats.FrequencyOf(Seq({kTermA, kTermX, kTermB})), 3u);
}

TEST(BruteForceTest, SigmaLimitsLength) {
  const NgramStatistics stats =
      BruteForceCounts(RunningExampleCorpus(), 3, 2);
  EXPECT_EQ(stats.size(), 5u);
  EXPECT_EQ(stats.FrequencyOf(Seq({kTermA, kTermX, kTermB})), 0u);
}

TEST(BruteForceTest, SigmaZeroIsUnbounded) {
  const NgramStatistics stats =
      BruteForceCounts(RunningExampleCorpus(), 1, 0);
  EXPECT_EQ(stats.MaxLength(), 5u);  // Whole documents.
}

TEST(BruteForceTest, OverlappingOccurrencesCounted) {
  Corpus corpus;
  Document d;
  d.id = 1;
  d.sentences = {{1, 1, 1, 1}};
  corpus.docs = {d};
  const NgramStatistics stats = BruteForceCounts(corpus, 1, 0);
  EXPECT_EQ(stats.FrequencyOf(Seq({1})), 4u);
  EXPECT_EQ(stats.FrequencyOf(Seq({1, 1})), 3u);
  EXPECT_EQ(stats.FrequencyOf(Seq({1, 1, 1})), 2u);
  EXPECT_EQ(stats.FrequencyOf(Seq({1, 1, 1, 1})), 1u);
}

TEST(BruteForceTest, SentencesAreBarriers) {
  Corpus corpus;
  Document d;
  d.id = 1;
  d.sentences = {{1, 2}, {3, 4}};
  corpus.docs = {d};
  const NgramStatistics stats = BruteForceCounts(corpus, 1, 0);
  EXPECT_EQ(stats.FrequencyOf(Seq({2, 3})), 0u);  // Crosses the barrier.
  EXPECT_EQ(stats.FrequencyOf(Seq({1, 2})), 1u);
}

TEST(BruteForceTest, DocumentFrequencyDiffersFromCollection) {
  Corpus corpus;
  Document d1;
  d1.id = 1;
  d1.sentences = {{9, 9, 9}};  // cf(<9>)=3 in one doc.
  Document d2;
  d2.id = 2;
  d2.sentences = {{9}};
  corpus.docs = {d1, d2};
  const NgramStatistics cf = BruteForceCounts(corpus, 1, 1);
  const NgramStatistics df = BruteForceDocumentFrequencies(corpus, 1, 1);
  EXPECT_EQ(cf.FrequencyOf(Seq({9})), 4u);
  EXPECT_EQ(df.FrequencyOf(Seq({9})), 2u);
}

TEST(BruteForceTest, MaximalOnRunningExample) {
  // Frequent set (tau=3, sigma=3): a, b, x, "a x", "x b", "a x b".
  // "a x b" subsumes a, x, b?? b and x also occur outside "a x b":
  // maximality only requires ONE frequent supersequence, so a, x, b,
  // "a x", "x b" are all non-maximal (each is a subsequence of "a x b").
  const NgramStatistics maximal =
      BruteForceMaximal(RunningExampleCorpus(), 3, 3);
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal.FrequencyOf(Seq({kTermA, kTermX, kTermB})), 3u);
}

TEST(BruteForceTest, ClosedOnRunningExample) {
  // Closed: "a x b" (3); x (7) and b (5) and "x b" (4) have no equal-cf
  // supersequence; a (3) and "a x" (3) are subsumed by "a x b" with cf 3.
  const NgramStatistics closed =
      BruteForceClosed(RunningExampleCorpus(), 3, 3);
  EXPECT_EQ(closed.size(), 4u);
  EXPECT_EQ(closed.FrequencyOf(Seq({kTermA, kTermX, kTermB})), 3u);
  EXPECT_EQ(closed.FrequencyOf(Seq({kTermX, kTermB})), 4u);
  EXPECT_EQ(closed.FrequencyOf(Seq({kTermX})), 7u);
  EXPECT_EQ(closed.FrequencyOf(Seq({kTermB})), 5u);
  EXPECT_EQ(closed.FrequencyOf(Seq({kTermA})), 0u);
  EXPECT_EQ(closed.FrequencyOf(Seq({kTermA, kTermX})), 0u);
}

TEST(BruteForceTest, MaximalSubsetOfClosedSubsetOfFrequent) {
  const Corpus corpus = testing::RandomCorpus(3, 30);
  const auto frequent = BruteForceCounts(corpus, 3, 4).ToMap();
  const auto closed = BruteForceClosed(corpus, 3, 4).ToMap();
  const auto maximal = BruteForceMaximal(corpus, 3, 4).ToMap();
  EXPECT_LE(maximal.size(), closed.size());
  EXPECT_LE(closed.size(), frequent.size());
  for (const auto& [seq, cf] : maximal) {
    EXPECT_TRUE(closed.count(seq)) << SequenceToDebugString(seq);
  }
  for (const auto& [seq, cf] : closed) {
    auto it = frequent.find(seq);
    ASSERT_TRUE(it != frequent.end());
    EXPECT_EQ(it->second, cf);
  }
}

TEST(BruteForceTest, TimeSeriesSumsToCount) {
  const Corpus corpus =
      testing::RandomCorpus(4, 20, 5, 3, 8, /*year_min=*/1990,
                            /*year_max=*/1995);
  const auto series = BruteForceTimeSeries(corpus, 2, 3);
  const auto counts = BruteForceCounts(corpus, 2, 3);
  ASSERT_EQ(series.size(), counts.size());
  for (const auto& [seq, ts] : series) {
    EXPECT_EQ(ts.Total(), counts.FrequencyOf(seq));
  }
}

}  // namespace
}  // namespace ngram
