#include "core/runner.h"

#include <gtest/gtest.h>

#include "corpus/running_example.h"
#include "testing/test_util.h"

namespace ngram {
namespace {

TEST(RunnerTest, ValidatesTau) {
  NgramJobOptions options = testing::TestOptions(Method::kSuffixSigma, 1, 3);
  options.tau = 0;
  EXPECT_TRUE(ValidateOptions(options).IsInvalidArgument());
  auto run = ComputeNgramStatistics(RunningExampleCorpus(), options);
  EXPECT_FALSE(run.ok());
}

TEST(RunnerTest, ValidatesReducersAndSlots) {
  NgramJobOptions options = testing::TestOptions(Method::kNaive, 1, 3);
  options.num_reducers = 0;
  EXPECT_TRUE(ValidateOptions(options).IsInvalidArgument());
  options = testing::TestOptions(Method::kNaive, 1, 3);
  options.map_slots = 0;
  EXPECT_TRUE(ValidateOptions(options).IsInvalidArgument());
  options = testing::TestOptions(Method::kNaive, 1, 3);
  options.sort_buffer_bytes = 16;
  EXPECT_TRUE(ValidateOptions(options).IsInvalidArgument());
}

TEST(RunnerTest, ValidatesAprioriIndexK) {
  NgramJobOptions options =
      testing::TestOptions(Method::kAprioriIndex, 1, 3);
  options.apriori_index_k = 0;
  EXPECT_TRUE(ValidateOptions(options).IsInvalidArgument());
}

TEST(RunnerTest, MethodNames) {
  EXPECT_STREQ(MethodName(Method::kNaive), "Naive");
  EXPECT_STREQ(MethodName(Method::kAprioriScan), "Apriori-Scan");
  EXPECT_STREQ(MethodName(Method::kAprioriIndex), "Apriori-Index");
  EXPECT_STREQ(MethodName(Method::kSuffixSigma), "Suffix-sigma");
}

TEST(RunnerTest, CorpusOverloadBuildsContext) {
  auto run = ComputeNgramStatistics(
      RunningExampleCorpus(), testing::TestOptions(Method::kSuffixSigma, 3,
                                                   3));
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->stats.size(), 6u);
}

TEST(RunnerTest, MetricsPopulated) {
  auto run = ComputeNgramStatistics(
      RunningExampleCorpus(),
      testing::TestOptions(Method::kAprioriScan, 3, 3));
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->metrics.num_jobs(), 1);
  EXPECT_GT(run->metrics.total_wallclock_ms(), 0.0);
  EXPECT_GT(run->metrics.map_output_bytes(), 0u);
  EXPECT_GT(run->metrics.map_output_records(), 0u);
}

TEST(RunnerTest, SigmaOrMaxSemantics) {
  NgramJobOptions options;
  options.sigma = 0;
  EXPECT_EQ(options.sigma_or_max(), UINT32_MAX);
  options.sigma = 7;
  EXPECT_EQ(options.sigma_or_max(), 7u);
}

TEST(NgramStatisticsTest, FrequencyOfRequiresCanonicalOrder) {
  NgramStatistics stats;
  stats.Add({3, 1}, 5);
  stats.Add({1}, 9);
  stats.SortCanonical();
  EXPECT_EQ(stats.FrequencyOf({1}), 9u);
  EXPECT_EQ(stats.FrequencyOf({3, 1}), 5u);
  EXPECT_EQ(stats.FrequencyOf({2}), 0u);
}

TEST(NgramStatisticsTest, DiffReportsBothSides) {
  NgramStatistics a, b;
  a.Add({1}, 1);
  a.Add({2}, 2);
  b.Add({2}, 3);
  b.Add({3}, 1);
  a.SortCanonical();
  b.SortCanonical();
  const auto diffs = a.DiffAgainst(b);
  ASSERT_EQ(diffs.size(), 3u);
}

TEST(NgramStatisticsTest, OutputCharacteristicsBuckets) {
  NgramStatistics stats;
  stats.Add({1}, 5);         // (0, 0)
  stats.Add({1, 2}, 50);     // (0, 1)
  TermSequence long_seq;
  for (TermId i = 0; i < 12; ++i) {
    long_seq.push_back(i + 1);
  }
  stats.Add(long_seq, 500);  // (1, 2)
  const Log10Histogram2D hist = stats.OutputCharacteristics();
  EXPECT_EQ(hist.BucketCount(0, 0), 1u);
  EXPECT_EQ(hist.BucketCount(0, 1), 1u);
  EXPECT_EQ(hist.BucketCount(1, 2), 1u);
}

}  // namespace
}  // namespace ngram
