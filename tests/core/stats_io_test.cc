#include "core/stats_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "mapreduce/io_env.h"
#include "text/corpus_builder.h"
#include "util/temp_dir.h"

namespace ngram {
namespace {

class StatsIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("stats-io-test");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(dir).ValueOrDie());
  }

  NgramStatistics SampleStats() {
    NgramStatistics stats;
    stats.Add({1}, 100);
    stats.Add({1, 2}, 42);
    stats.Add({70000, 3, 5}, 7);
    return stats;
  }

  std::string ReadFile(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(StatsIoTest, BinaryRoundTrip) {
  const NgramStatistics original = SampleStats();
  const std::string path = dir_->File("stats.bin");
  ASSERT_TRUE(WriteStatsBinary(original, path).ok());
  NgramStatistics loaded;
  ASSERT_TRUE(ReadStatsBinary(path, &loaded).ok());
  EXPECT_EQ(loaded.entries, original.entries);
}

TEST_F(StatsIoTest, BinaryEmptyTable) {
  const std::string path = dir_->File("empty.bin");
  ASSERT_TRUE(WriteStatsBinary(NgramStatistics{}, path).ok());
  NgramStatistics loaded;
  loaded.Add({9}, 9);
  ASSERT_TRUE(ReadStatsBinary(path, &loaded).ok());
  EXPECT_TRUE(loaded.empty());
}

TEST_F(StatsIoTest, BinaryRejectsBadMagic) {
  const std::string path = dir_->File("garbage.bin");
  std::ofstream(path) << "not a stats file";
  NgramStatistics loaded;
  EXPECT_TRUE(ReadStatsBinary(path, &loaded).IsCorruption());
}

TEST_F(StatsIoTest, BinaryRejectsTruncation) {
  const std::string path = dir_->File("trunc.bin");
  ASSERT_TRUE(WriteStatsBinary(SampleStats(), path).ok());
  const std::string content = ReadFile(path);
  std::ofstream(path, std::ios::binary)
      << content.substr(0, content.size() - 1);
  NgramStatistics loaded;
  EXPECT_TRUE(ReadStatsBinary(path, &loaded).IsCorruption());
}

TEST_F(StatsIoTest, FaultEnvInjectsWriteError) {
  mr::FaultPlan plan;
  plan.kind = mr::FaultPlan::Kind::kWriteError;
  plan.op = 1;
  mr::FaultEnv env(mr::IoEnv::Default(), plan);
  const Status st =
      WriteStatsBinary(SampleStats(), dir_->File("faulted.bin"), &env);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_TRUE(env.fault_fired());
}

TEST_F(StatsIoTest, FaultEnvInjectsReadError) {
  const std::string path = dir_->File("readable.bin");
  ASSERT_TRUE(WriteStatsBinary(SampleStats(), path).ok());
  mr::FaultPlan plan;
  plan.kind = mr::FaultPlan::Kind::kReadError;
  plan.op = 1;
  mr::FaultEnv env(mr::IoEnv::Default(), plan);
  NgramStatistics loaded;
  const Status st = ReadStatsBinary(path, &loaded, &env);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_TRUE(env.fault_fired());
}

TEST_F(StatsIoTest, ReadMissingFileIsIOError) {
  NgramStatistics loaded;
  EXPECT_TRUE(ReadStatsBinary(dir_->File("absent.bin"), &loaded).IsIOError());
}

TEST_F(StatsIoTest, TsvWithRawIds) {
  NgramStatistics stats;
  stats.Add({3, 1}, 5);
  const std::string path = dir_->File("stats.tsv");
  ASSERT_TRUE(WriteStatsTsv(stats, nullptr, path).ok());
  EXPECT_EQ(ReadFile(path), "3 1\t5\n");
}

TEST_F(StatsIoTest, TsvWithVocabulary) {
  TextCorpusBuilder builder;
  builder.Add(1, "hello world hello");
  auto built = builder.Finalize();
  NgramStatistics stats;
  stats.Add(built.vocabulary->Encode({"hello", "world"}), 1);
  stats.Add(built.vocabulary->Encode({"hello"}), 2);
  const std::string path = dir_->File("vocab.tsv");
  ASSERT_TRUE(WriteStatsTsv(stats, built.vocabulary.get(), path).ok());
  EXPECT_EQ(ReadFile(path), "hello world\t1\nhello\t2\n");
}

}  // namespace
}  // namespace ngram
