#include "core/maximality.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/runner.h"
#include "corpus/running_example.h"
#include "testing/test_util.h"

namespace ngram {
namespace {

using testing::Seq;

TEST(MaximalityTest, RunningExampleMaximal) {
  // Section VI-A: only <a x b> survives both filter phases.
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  auto run = RunSuffixSigmaMaximal(
      ctx, testing::TestOptions(Method::kSuffixSigma, 3, 3));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->stats.size(), 1u);
  run->stats.SortCanonical();
  EXPECT_EQ(run->stats.FrequencyOf(Seq({kTermA, kTermX, kTermB})), 3u);
  EXPECT_EQ(run->metrics.num_jobs(), 2);  // SUFFIX-sigma + post-filter.
}

TEST(MaximalityTest, RunningExampleClosed) {
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  auto run = RunSuffixSigmaClosed(
      ctx, testing::TestOptions(Method::kSuffixSigma, 3, 3));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  NgramStatistics expected = BruteForceClosed(RunningExampleCorpus(), 3, 3);
  EXPECT_TRUE(run->stats.SameAs(expected))
      << ::testing::PrintToString(run->stats.DiffAgainst(expected));
}

struct ModeCase {
  uint64_t tau;
  uint32_t sigma;
  uint64_t seed;
};

class MaximalSweepTest : public ::testing::TestWithParam<ModeCase> {};

TEST_P(MaximalSweepTest, MatchesBruteForceMaximal) {
  const auto& c = GetParam();
  const Corpus corpus = testing::RandomCorpus(c.seed, 30, 5, 3, 10);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  auto run = RunSuffixSigmaMaximal(
      ctx, testing::TestOptions(Method::kSuffixSigma, c.tau, c.sigma));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  NgramStatistics expected = BruteForceMaximal(corpus, c.tau, c.sigma);
  EXPECT_TRUE(run->stats.SameAs(expected))
      << ::testing::PrintToString(run->stats.DiffAgainst(expected));
}

class ClosedSweepTest : public ::testing::TestWithParam<ModeCase> {};

TEST_P(ClosedSweepTest, MatchesBruteForceClosed) {
  const auto& c = GetParam();
  const Corpus corpus = testing::RandomCorpus(c.seed, 30, 5, 3, 10);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  auto run = RunSuffixSigmaClosed(
      ctx, testing::TestOptions(Method::kSuffixSigma, c.tau, c.sigma));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  NgramStatistics expected = BruteForceClosed(corpus, c.tau, c.sigma);
  EXPECT_TRUE(run->stats.SameAs(expected))
      << ::testing::PrintToString(run->stats.DiffAgainst(expected));
}

std::string ModeCaseName(const ::testing::TestParamInfo<ModeCase>& info) {
  return "tau" + std::to_string(info.param.tau) + "_sigma" +
         std::to_string(info.param.sigma) + "_seed" +
         std::to_string(info.param.seed);
}

const ModeCase kModeCases[] = {
    {1, 3, 201}, {2, 3, 202}, {2, 4, 203}, {3, 5, 204},
    {2, 0, 205}, {4, 2, 206}, {1, 0, 207}, {5, 4, 208},
};

INSTANTIATE_TEST_SUITE_P(Sweep, MaximalSweepTest,
                         ::testing::ValuesIn(kModeCases), ModeCaseName);
INSTANTIATE_TEST_SUITE_P(Sweep, ClosedSweepTest,
                         ::testing::ValuesIn(kModeCases), ModeCaseName);

TEST(MaximalityTest, OutputsShrinkMonotonically) {
  // |maximal| <= |closed| <= |frequent| (Section VI-A's point: a much more
  // compact result).
  const Corpus corpus = testing::RandomCorpus(210, 80, 8, 4, 14);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  const NgramJobOptions options =
      testing::TestOptions(Method::kSuffixSigma, 3, 5);
  auto all = ComputeNgramStatistics(ctx, options);
  auto closed = RunSuffixSigmaClosed(ctx, options);
  auto maximal = RunSuffixSigmaMaximal(ctx, options);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(closed.ok());
  ASSERT_TRUE(maximal.ok());
  EXPECT_LE(maximal->stats.size(), closed->stats.size());
  EXPECT_LE(closed->stats.size(), all->stats.size());
  EXPECT_GT(maximal->stats.size(), 0u);
}

TEST(MaximalityTest, ClosedFrequenciesAreAccurate) {
  // Closedness preserves reconstructability: every closed n-gram carries
  // its exact cf.
  const Corpus corpus = testing::RandomCorpus(211, 40, 6, 3, 10);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  auto closed = RunSuffixSigmaClosed(
      ctx, testing::TestOptions(Method::kSuffixSigma, 2, 4));
  ASSERT_TRUE(closed.ok());
  const NgramStatistics all = BruteForceCounts(corpus, 2, 4);
  for (const auto& [seq, cf] : closed->stats.entries) {
    EXPECT_EQ(cf, all.FrequencyOf(seq)) << SequenceToDebugString(seq);
  }
}

}  // namespace
}  // namespace ngram
