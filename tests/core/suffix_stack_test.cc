#include "core/suffix_stack.h"

#include <gtest/gtest.h>

#include <map>

namespace ngram {
namespace {

// Letter ids matching the paper's alphabetical order: a=1, b=2, x=3.
constexpr TermId A = 1, B = 2, X = 3;

using Emitted = std::map<TermSequence, uint64_t>;

SuffixStack<CountAggregate>::EmitFn Collect(Emitted* out) {
  return [out](const TermSequence& ngram, const CountAggregate& agg) {
    (*out)[ngram] = agg.count;
    return Status::OK();
  };
}

TEST(SuffixStackTest, Figure1TraceStates) {
  // The paper's Figure 1: reducer for term b receives
  //   <b x x>:|l|=1, <b x>:|l|=1, <b a x>:|l|=2, <b>:|l|=1  (tau = 3).
  Emitted emitted;
  SuffixStack<CountAggregate> stack(3, EmitMode::kAll, Collect(&emitted));

  ASSERT_TRUE(stack.Push({B, X, X}, {1}).ok());
  EXPECT_EQ(stack.FrameSnapshot(),
            (std::vector<std::pair<TermId, uint64_t>>{{B, 0}, {X, 0},
                                                      {X, 1}}));

  ASSERT_TRUE(stack.Push({B, X}, {1}).ok());
  EXPECT_EQ(stack.FrameSnapshot(),
            (std::vector<std::pair<TermId, uint64_t>>{{B, 0}, {X, 2}}));

  ASSERT_TRUE(stack.Push({B, A, X}, {2}).ok());
  EXPECT_EQ(stack.FrameSnapshot(),
            (std::vector<std::pair<TermId, uint64_t>>{{B, 2}, {A, 0},
                                                      {X, 2}}));

  // Figure 1's last column shows [b 4] just before |l| of <b> is added;
  // after the complete push the b frame holds 5.
  ASSERT_TRUE(stack.Push({B}, {1}).ok());
  EXPECT_EQ(stack.FrameSnapshot(),
            (std::vector<std::pair<TermId, uint64_t>>{{B, 5}}));

  ASSERT_TRUE(stack.Flush().ok());
  // Only <b> reaches tau = 3 on this reducer.
  EXPECT_EQ(emitted, (Emitted{{{B}, 5}}));
}

TEST(SuffixStackTest, RunningExampleReducerX) {
  // Reducer for x: suffixes <x x>:1, <x b x x>:1, <x b x>... — derive from
  // the documents directly: suffixes starting with x, truncated to 3.
  //   d1 = a x b x x -> <x b x>, <x x>, <x>
  //   d2 = b a x b x -> <x b x>, <x>
  //   d3 = x b a x b -> <x b a>, <x b>
  // Grouped (reverse-lex, ids a=1,b=2,x=3): <x x>:1, <x b x>:2, <x b a>:1,
  // <x b>:1, <x>:2.
  Emitted emitted;
  SuffixStack<CountAggregate> stack(3, EmitMode::kAll, Collect(&emitted));
  ASSERT_TRUE(stack.Push({X, X}, {1}).ok());
  ASSERT_TRUE(stack.Push({X, B, X}, {2}).ok());
  ASSERT_TRUE(stack.Push({X, B, A}, {1}).ok());
  ASSERT_TRUE(stack.Push({X, B}, {1}).ok());
  ASSERT_TRUE(stack.Push({X}, {2}).ok());
  ASSERT_TRUE(stack.Flush().ok());
  EXPECT_EQ(emitted, (Emitted{{{X, B}, 4}, {{X}, 7}}));
}

TEST(SuffixStackTest, SingleSuffixEmitsAllPrefixes) {
  Emitted emitted;
  SuffixStack<CountAggregate> stack(1, EmitMode::kAll, Collect(&emitted));
  ASSERT_TRUE(stack.Push({5, 4, 3}, {2}).ok());
  ASSERT_TRUE(stack.Flush().ok());
  EXPECT_EQ(emitted,
            (Emitted{{{5}, 2}, {{5, 4}, 2}, {{5, 4, 3}, 2}}));
}

TEST(SuffixStackTest, RejectsOutOfOrderInput) {
  Emitted emitted;
  SuffixStack<CountAggregate> stack(1, EmitMode::kAll, Collect(&emitted));
  ASSERT_TRUE(stack.Push({2, 1}, {1}).ok());
  // An extension after its prefix violates reverse-lex order.
  EXPECT_TRUE(stack.Push({2, 1, 5}, {1}).IsInvalidArgument());

  SuffixStack<CountAggregate> stack2(1, EmitMode::kAll, Collect(&emitted));
  ASSERT_TRUE(stack2.Push({2, 1}, {1}).ok());
  // Diverging upward (larger term after smaller) is also out of order.
  EXPECT_TRUE(stack2.Push({2, 3}, {1}).IsInvalidArgument());
}

TEST(SuffixStackTest, FlushOnEmptyStackIsOk) {
  Emitted emitted;
  SuffixStack<CountAggregate> stack(1, EmitMode::kAll, Collect(&emitted));
  EXPECT_TRUE(stack.Flush().ok());
  EXPECT_TRUE(emitted.empty());
}

TEST(SuffixStackTest, PrefixMaximalSuppresssExtendedNgrams) {
  // <5 4>:3 and <5>:3+1. tau=3: <5> has a frequent extension -> only
  // <5 4> is prefix-maximal.
  Emitted emitted;
  SuffixStack<CountAggregate> stack(3, EmitMode::kPrefixMaximal,
                                    Collect(&emitted));
  ASSERT_TRUE(stack.Push({5, 4}, {3}).ok());
  ASSERT_TRUE(stack.Push({5}, {1}).ok());
  ASSERT_TRUE(stack.Flush().ok());
  EXPECT_EQ(emitted, (Emitted{{{5, 4}, 3}}));
}

TEST(SuffixStackTest, PrefixMaximalKeepsPrefixWithInfrequentChildren) {
  // Children below tau do not block maximality.
  Emitted emitted;
  SuffixStack<CountAggregate> stack(3, EmitMode::kPrefixMaximal,
                                    Collect(&emitted));
  ASSERT_TRUE(stack.Push({5, 4}, {2}).ok());  // cf 2 < tau.
  ASSERT_TRUE(stack.Push({5}, {2}).ok());     // cf 4 >= tau.
  ASSERT_TRUE(stack.Flush().ok());
  EXPECT_EQ(emitted, (Emitted{{{5}, 4}}));
}

TEST(SuffixStackTest, PrefixClosedSuppressesEqualFrequencyPrefix) {
  Emitted emitted;
  SuffixStack<CountAggregate> stack(2, EmitMode::kPrefixClosed,
                                    Collect(&emitted));
  ASSERT_TRUE(stack.Push({5, 4}, {3}).ok());
  ASSERT_TRUE(stack.Push({5}, {0}).ok());  // cf(<5>) == cf(<5 4>) == 3.
  ASSERT_TRUE(stack.Flush().ok());
  EXPECT_EQ(emitted, (Emitted{{{5, 4}, 3}}));
}

TEST(SuffixStackTest, PrefixClosedKeepsHigherFrequencyPrefix) {
  Emitted emitted;
  SuffixStack<CountAggregate> stack(2, EmitMode::kPrefixClosed,
                                    Collect(&emitted));
  ASSERT_TRUE(stack.Push({5, 4}, {3}).ok());
  ASSERT_TRUE(stack.Push({5}, {2}).ok());  // cf(<5>) = 5 != 3.
  ASSERT_TRUE(stack.Flush().ok());
  EXPECT_EQ(emitted, (Emitted{{{5, 4}, 3}, {{5}, 5}}));
}

TEST(SuffixStackTest, PrefixClosedTracksMaxChildNotLastChild) {
  // The subtle case: children <5 9> (cf 5) and <5 4> (cf 3); <5> has cf 8.
  // Last-popped child has cf 3 != 8, but closedness must consider the MAX
  // child. Here max child cf is 5 != 8, so <5> IS prefix-closed. But if
  // <5> had cf 5 (only the two children, no own occurrences: 5 = 5 + 0
  // impossible)... exercise the max tracking with equal-to-max case:
  // children cf 5 and cf 3, parent cf 5 (only possible if parent count
  // comes entirely from the cf-5 child) -> not closed.
  Emitted emitted;
  SuffixStack<CountAggregate> stack(1, EmitMode::kPrefixClosed,
                                    Collect(&emitted));
  ASSERT_TRUE(stack.Push({5, 9}, {5}).ok());
  ASSERT_TRUE(stack.Push({5, 4}, {0}).ok());
  ASSERT_TRUE(stack.Flush().ok());
  // <5 9> closed (no children); <5 4> cf 0 below tau=1; <5> cf 5 equals
  // max child 5 -> suppressed.
  EXPECT_EQ(emitted, (Emitted{{{5, 9}, 5}}));
}

TEST(SuffixStackTest, DocSetAggregateCountsDistinctDocs) {
  std::map<TermSequence, uint64_t> emitted;
  SuffixStack<DocSetAggregate> stack(
      1, EmitMode::kAll,
      [&emitted](const TermSequence& ngram, const DocSetAggregate& agg) {
        emitted[ngram] = agg.Total();
        return Status::OK();
      });
  DocSetAggregate d12;
  d12.docs = {1, 2};
  DocSetAggregate d23;
  d23.docs = {2, 3};
  ASSERT_TRUE(stack.Push({7, 6}, d12).ok());
  ASSERT_TRUE(stack.Push({7}, d23).ok());
  ASSERT_TRUE(stack.Flush().ok());
  EXPECT_EQ(emitted[(TermSequence{7, 6})], 2u);
  EXPECT_EQ(emitted[(TermSequence{7})], 3u);  // Union {1,2,3}, not 4.
}

TEST(PrefixFilterStackTest, MaximalKeepsOnlyUnextendedItems) {
  std::map<TermSequence, uint64_t> kept;
  PrefixFilterStack stack(EmitMode::kPrefixMaximal,
                          [&kept](const TermSequence& seq, uint64_t cf) {
                            kept[seq] = cf;
                            return Status::OK();
                          });
  // Reverse-lex order with ids 3 > 2 > 1: <2 3 1>, <2 3>, <2 1>, <2>.
  ASSERT_TRUE(stack.Push({2, 3, 1}, 3).ok());
  ASSERT_TRUE(stack.Push({2, 3}, 4).ok());
  ASSERT_TRUE(stack.Push({2, 1}, 5).ok());
  ASSERT_TRUE(stack.Push({2}, 9).ok());
  ASSERT_TRUE(stack.Flush().ok());
  // <2 3> is a prefix of <2 3 1>; <2> is a prefix of everything.
  EXPECT_EQ(kept, (std::map<TermSequence, uint64_t>{{{2, 3, 1}, 3},
                                                    {{2, 1}, 5}}));
}

TEST(PrefixFilterStackTest, ClosedUsesMaxDescendantCf) {
  // The counterexample to naive "compare with last emitted": items
  // <2 3> cf 5, <2 1> cf 3, <2> cf 5. The immediate predecessor of <2> is
  // <2 1> with different cf, but <2 3> has equal cf -> <2> is NOT closed.
  std::map<TermSequence, uint64_t> kept;
  PrefixFilterStack stack(EmitMode::kPrefixClosed,
                          [&kept](const TermSequence& seq, uint64_t cf) {
                            kept[seq] = cf;
                            return Status::OK();
                          });
  ASSERT_TRUE(stack.Push({2, 3}, 5).ok());
  ASSERT_TRUE(stack.Push({2, 1}, 3).ok());
  ASSERT_TRUE(stack.Push({2}, 5).ok());
  ASSERT_TRUE(stack.Flush().ok());
  EXPECT_EQ(kept, (std::map<TermSequence, uint64_t>{{{2, 3}, 5},
                                                    {{2, 1}, 3}}));
}

TEST(PrefixFilterStackTest, InteriorFramesAreNotItems) {
  // Input <2 3 1> only: frames for <2> and <2 3> exist on the stack but
  // must not be emitted.
  std::map<TermSequence, uint64_t> kept;
  PrefixFilterStack stack(EmitMode::kPrefixMaximal,
                          [&kept](const TermSequence& seq, uint64_t cf) {
                            kept[seq] = cf;
                            return Status::OK();
                          });
  ASSERT_TRUE(stack.Push({2, 3, 1}, 7).ok());
  ASSERT_TRUE(stack.Flush().ok());
  EXPECT_EQ(kept, (std::map<TermSequence, uint64_t>{{{2, 3, 1}, 7}}));
}

TEST(PrefixFilterStackTest, RejectsOutOfOrder) {
  PrefixFilterStack stack(EmitMode::kPrefixMaximal,
                          [](const TermSequence&, uint64_t) {
                            return Status::OK();
                          });
  ASSERT_TRUE(stack.Push({2}, 1).ok());
  EXPECT_TRUE(stack.Push({2, 1}, 1).IsInvalidArgument());
}

}  // namespace
}  // namespace ngram
