#include "core/suffix_index.h"

#include <gtest/gtest.h>

#include <map>

#include "corpus/running_example.h"
#include "testing/test_util.h"

namespace ngram {
namespace {

std::map<TermSequence, PostingList> ToMap(const PositionalIndex& index) {
  std::map<TermSequence, PostingList> out;
  for (const auto& [seq, list] : index.rows) {
    out[seq] = list;
  }
  return out;
}

TEST(SuffixIndexTest, RunningExamplePostings) {
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  auto run = RunSuffixSigmaIndex(
      ctx, testing::TestOptions(Method::kSuffixSigma, 3, 3));
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const auto index = ToMap(run->index);
  ASSERT_EQ(index.size(), 6u);

  // <a x b> : d1:[0], d2:[1], d3:[2] (Section III-B).
  const auto axb = index.find({kTermA, kTermX, kTermB});
  ASSERT_TRUE(axb != index.end());
  ASSERT_EQ(axb->second.postings.size(), 3u);
  EXPECT_EQ(axb->second.postings[0].doc_id, 1u);
  EXPECT_EQ(axb->second.postings[0].positions,
            (std::vector<uint32_t>{0}));
  EXPECT_EQ(axb->second.postings[1].positions,
            (std::vector<uint32_t>{1}));
  EXPECT_EQ(axb->second.postings[2].positions,
            (std::vector<uint32_t>{2}));

  // <x> occurs 7 times: d1:[1,3,4], d2:[2,4], d3:[0,3].
  const auto x = index.find({kTermX});
  ASSERT_TRUE(x != index.end());
  EXPECT_EQ(x->second.TotalOccurrences(), 7u);
  EXPECT_EQ(x->second.postings[0].positions,
            (std::vector<uint32_t>{1, 3, 4}));
}

class SuffixIndexAgreementTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(SuffixIndexAgreementTest, MatchesAprioriIndex) {
  // The single-job SUFFIX-sigma index must equal APRIORI-INDEX's multi-job
  // index, posting for posting.
  const Corpus corpus = testing::RandomCorpus(GetParam(), 25, 5, 3, 10);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramJobOptions options = testing::TestOptions(Method::kSuffixSigma, 2, 4);
  auto suffix_run = RunSuffixSigmaIndex(ctx, options);
  ASSERT_TRUE(suffix_run.ok()) << suffix_run.status().ToString();

  options.method = Method::kAprioriIndex;
  options.apriori_index_k = 2;
  auto apriori_run = RunAprioriIndexWithIndex(ctx, options);
  ASSERT_TRUE(apriori_run.ok()) << apriori_run.status().ToString();

  const auto got = ToMap(suffix_run->index);
  const auto want = ToMap(apriori_run->index);
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [seq, list] : want) {
    auto it = got.find(seq);
    ASSERT_TRUE(it != got.end()) << SequenceToDebugString(seq);
    EXPECT_EQ(it->second, list) << SequenceToDebugString(seq);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuffixIndexAgreementTest,
                         ::testing::Values(601, 602, 603, 604));

TEST(SuffixIndexTest, DocumentFrequencyModeThresholdsOnDocs) {
  // One doc with <9 9 9>: cf(<9>) = 3 but df = 1.
  Corpus corpus;
  Document d;
  d.id = 1;
  d.sentences = {{9, 9, 9}};
  corpus.docs = {d};
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramJobOptions options = testing::TestOptions(Method::kSuffixSigma, 2, 2);
  options.frequency_mode = FrequencyMode::kDocument;
  options.document_splits = false;
  auto run = RunSuffixSigmaIndex(ctx, options);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->index.empty());  // df(<9>) = 1 < tau = 2.

  options.frequency_mode = FrequencyMode::kCollection;
  auto cf_run = RunSuffixSigmaIndex(ctx, options);
  ASSERT_TRUE(cf_run.ok());
  EXPECT_EQ(cf_run->index.size(), 2u);  // <9> and <9 9>.
}

TEST(SuffixIndexTest, SingleJobAndSuffixRecordVolume) {
  const CorpusContext ctx = BuildCorpusContext(RunningExampleCorpus());
  NgramJobOptions options = testing::TestOptions(Method::kSuffixSigma, 3, 3);
  options.document_splits = false;
  auto run = RunSuffixSigmaIndex(ctx, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->metrics.num_jobs(), 1);
  EXPECT_EQ(run->metrics.map_output_records(), 15u);  // One per position.
}

}  // namespace
}  // namespace ngram
