#include "core/suffix_timeseries.h"

#include <gtest/gtest.h>

#include <map>

#include "core/brute_force.h"
#include "core/timeseries.h"
#include "testing/test_util.h"

namespace ngram {
namespace {

TEST(TimeSeriesTypeTest, AddAndAt) {
  TimeSeries ts;
  ts.Add(2000, 2);
  ts.Add(1990, 1);
  ts.Add(2000, 3);
  EXPECT_EQ(ts.At(2000), 5u);
  EXPECT_EQ(ts.At(1990), 1u);
  EXPECT_EQ(ts.At(1980), 0u);
  EXPECT_EQ(ts.Total(), 6u);
  // Points stay sorted by year.
  ASSERT_EQ(ts.points.size(), 2u);
  EXPECT_EQ(ts.points[0].first, 1990);
}

TEST(TimeSeriesTypeTest, AddZeroIsNoop) {
  TimeSeries ts;
  ts.Add(2000, 0);
  EXPECT_TRUE(ts.points.empty());
}

TEST(TimeSeriesTypeTest, MergeFromUnionsYears) {
  TimeSeries a, b;
  a.Add(1990, 1);
  a.Add(1995, 2);
  b.Add(1995, 3);
  b.Add(2000, 4);
  a.MergeFrom(b);
  EXPECT_EQ(a.At(1990), 1u);
  EXPECT_EQ(a.At(1995), 5u);
  EXPECT_EQ(a.At(2000), 4u);
  EXPECT_EQ(a.Total(), 10u);
}

TEST(TimeSeriesTypeTest, ToStringRendering) {
  TimeSeries ts;
  ts.Add(1999, 7);
  EXPECT_EQ(ts.ToString(), "{1999:7}");
}

class TimeSeriesRunTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TimeSeriesRunTest, MatchesBruteForce) {
  const Corpus corpus = testing::RandomCorpus(GetParam(), 25, 5, 3, 10,
                                              /*year_min=*/1987,
                                              /*year_max=*/2007);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramJobOptions options = testing::TestOptions(Method::kSuffixSigma, 2, 3);
  auto run = RunSuffixSigmaTimeSeries(ctx, options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  const auto expected = BruteForceTimeSeries(corpus, 2, 3);
  std::map<TermSequence, TimeSeries> got;
  for (const auto& [seq, ts] : run->series.rows) {
    got[seq] = ts;
  }
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [seq, ts] : expected) {
    auto it = got.find(seq);
    ASSERT_TRUE(it != got.end()) << SequenceToDebugString(seq);
    EXPECT_EQ(it->second, ts)
        << SequenceToDebugString(seq) << " got " << it->second.ToString()
        << " want " << ts.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimeSeriesRunTest,
                         ::testing::Values(301, 302, 303));

TEST(TimeSeriesRunTest, TotalsMatchPlainCounts) {
  const Corpus corpus = testing::RandomCorpus(310, 30, 6, 3, 10, 1990,
                                              2000);
  const CorpusContext ctx = BuildCorpusContext(corpus);
  NgramJobOptions options = testing::TestOptions(Method::kSuffixSigma, 3, 4);
  auto series = RunSuffixSigmaTimeSeries(ctx, options);
  ASSERT_TRUE(series.ok());
  const NgramStatistics counts = BruteForceCounts(corpus, 3, 4);
  ASSERT_EQ(series->series.size(), counts.size());
  for (const auto& [seq, ts] : series->series.rows) {
    EXPECT_EQ(ts.Total(), counts.FrequencyOf(seq));
  }
}

TEST(TimeSeriesRunTest, DocsWithoutYearLandInBucketZero) {
  Corpus corpus;
  Document d;
  d.id = 1;
  d.year = 0;
  d.sentences = {{4, 4, 4}};
  corpus.docs = {d};
  const CorpusContext ctx = BuildCorpusContext(corpus);
  auto run = RunSuffixSigmaTimeSeries(
      ctx, testing::TestOptions(Method::kSuffixSigma, 1, 2));
  ASSERT_TRUE(run.ok());
  for (const auto& [seq, ts] : run->series.rows) {
    ASSERT_EQ(ts.points.size(), 1u);
    EXPECT_EQ(ts.points[0].first, 0);
  }
}

}  // namespace
}  // namespace ngram
