#include "encoding/varint.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/random.h"

namespace ngram {
namespace {

TEST(VarintTest, RoundTripSmallValues) {
  for (uint64_t v = 0; v < 1000; ++v) {
    std::string buf;
    PutVarint64(&buf, v);
    Slice in(buf);
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&in, &out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(VarintTest, RoundTripBoundaryValues) {
  const std::vector<uint64_t> values = {
      0,
      127,
      128,
      16383,
      16384,
      (1ULL << 32) - 1,
      1ULL << 32,
      std::numeric_limits<uint64_t>::max(),
  };
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(v));
    Slice in(buf);
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(VarintTest, EncodedLengths) {
  EXPECT_EQ(VarintLength(0), 1);
  EXPECT_EQ(VarintLength(127), 1);
  EXPECT_EQ(VarintLength(128), 2);
  EXPECT_EQ(VarintLength(16383), 2);
  EXPECT_EQ(VarintLength(16384), 3);
  EXPECT_EQ(VarintLength(std::numeric_limits<uint64_t>::max()), 10);
}

TEST(VarintTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    uint64_t out = 0;
    EXPECT_FALSE(GetVarint64(&in, &out)) << "cut=" << cut;
  }
}

TEST(VarintTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 33);
  Slice in(buf);
  uint32_t out = 0;
  EXPECT_FALSE(GetVarint32(&in, &out));
}

TEST(VarintTest, SequentialDecodeAdvances) {
  std::string buf;
  for (uint32_t v = 0; v < 100; v += 7) {
    PutVarint32(&buf, v);
  }
  Slice in(buf);
  for (uint32_t v = 0; v < 100; v += 7) {
    uint32_t out = 0;
    ASSERT_TRUE(GetVarint32(&in, &out));
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(ZigZagTest, RoundTripSigned) {
  const std::vector<int64_t> values = {0,  -1, 1,  -2, 2,
                                       63, 64, -64, -65,
                                       std::numeric_limits<int64_t>::min(),
                                       std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
    std::string buf;
    PutVarintSigned64(&buf, v);
    Slice in(buf);
    int64_t out = 0;
    ASSERT_TRUE(GetVarintSigned64(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(ZigZagTest, SmallMagnitudeStaysShort) {
  std::string buf;
  PutVarintSigned64(&buf, -3);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Fixed32Test, RoundTrip) {
  for (uint32_t v : {0u, 1u, 255u, 65536u, 0xdeadbeefu, 0xffffffffu}) {
    std::string buf;
    PutFixed32(&buf, v);
    ASSERT_EQ(buf.size(), 4u);
    EXPECT_EQ(DecodeFixed32(buf.data()), v);
  }
}

TEST(VarintTest, RandomizedRoundTrip) {
  Rng rng(123);
  for (int i = 0; i < 5000; ++i) {
    const int bits = 1 + static_cast<int>(rng.Uniform(64));
    const uint64_t v = rng() >> (64 - bits);
    std::string buf;
    PutVarint64(&buf, v);
    Slice in(buf);
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(&in, &out));
    ASSERT_EQ(out, v);
  }
}

}  // namespace
}  // namespace ngram
