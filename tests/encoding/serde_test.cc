#include "encoding/serde.h"

#include <gtest/gtest.h>

#include "core/input.h"
#include "core/timeseries.h"
#include "index/posting.h"

namespace ngram {
namespace {

template <typename T>
T RoundTrip(const T& value) {
  std::string buf;
  Serde<T>::Encode(value, &buf);
  T out{};
  EXPECT_TRUE(Serde<T>::Decode(Slice(buf), &out));
  return out;
}

TEST(SerdeTest, PrimitiveRoundTrips) {
  EXPECT_EQ(RoundTrip<uint32_t>(0u), 0u);
  EXPECT_EQ(RoundTrip<uint32_t>(123456u), 123456u);
  EXPECT_EQ(RoundTrip<uint64_t>(1ULL << 50), 1ULL << 50);
  EXPECT_EQ(RoundTrip<int64_t>(-12345), -12345);
  EXPECT_EQ(RoundTrip<std::string>(std::string("abc\0def", 7)),
            std::string("abc\0def", 7));
}

TEST(SerdeTest, PrimitiveRejectsTrailingGarbage) {
  std::string buf;
  Serde<uint64_t>::Encode(7, &buf);
  buf.push_back('x');
  uint64_t out = 0;
  EXPECT_FALSE(Serde<uint64_t>::Decode(Slice(buf), &out));
}

TEST(SerdeTest, TermSequenceRoundTrip) {
  const TermSequence seq = {5, 500, 50000};
  EXPECT_EQ(RoundTrip(seq), seq);
}

TEST(SerdeTest, PairRoundTrip) {
  const std::pair<uint64_t, int64_t> p{42, -7};
  EXPECT_EQ(RoundTrip(p), p);
  const std::pair<TermSequence, uint64_t> q{{1, 2, 3}, 99};
  EXPECT_EQ(RoundTrip(q), q);
}

TEST(SerdeTest, NestedPairRoundTrip) {
  const std::pair<std::pair<uint64_t, uint64_t>, std::string> v{{1, 2},
                                                                "xyz"};
  EXPECT_EQ(RoundTrip(v), v);
}

TEST(SerdeTest, VectorRoundTrip) {
  const std::vector<uint64_t> v = {1, 1000, 100000};
  EXPECT_EQ(RoundTrip(v), v);
  const std::vector<std::string> s = {"a", "", "ccc"};
  EXPECT_EQ(RoundTrip(s), s);
}

TEST(SerdeTest, PostingRoundTrip) {
  Posting p;
  p.doc_id = 123456789;
  p.positions = {0, 1, 17, 100000};
  EXPECT_EQ(RoundTrip(p), p);
}

TEST(SerdeTest, PostingListRoundTrip) {
  PostingList list;
  list.postings.push_back({10, {1, 5}});
  list.postings.push_back({11, {0}});
  list.postings.push_back({1000, {7, 8, 9}});
  EXPECT_EQ(RoundTrip(list), list);
  EXPECT_EQ(list.TotalOccurrences(), 6u);
  EXPECT_EQ(list.DocumentFrequency(), 3u);
}

TEST(SerdeTest, EmptyPostingListRoundTrip) {
  PostingList list;
  EXPECT_EQ(RoundTrip(list), list);
}

TEST(SerdeTest, FragmentRoundTrip) {
  Fragment f;
  f.base = 42;
  f.terms = {9, 8, 7};
  EXPECT_EQ(RoundTrip(f), f);
}

TEST(SerdeTest, TimeSeriesRoundTrip) {
  TimeSeries ts;
  ts.Add(1987, 3);
  ts.Add(2007, 1);
  ts.Add(1990, 5);
  EXPECT_EQ(RoundTrip(ts), ts);
}

TEST(SerdeTest, PostingListDeltaEncodingIsCompact) {
  // Dense doc ids and positions should cost ~1 byte each.
  PostingList list;
  for (uint64_t d = 1000; d < 1100; ++d) {
    list.postings.push_back({d, {5}});
  }
  std::string buf;
  Serde<PostingList>::Encode(list, &buf);
  EXPECT_LT(buf.size(), 100 * 5u);
}

TEST(SerdeTest, CorruptPostingListRejected) {
  PostingList list;
  list.postings.push_back({10, {1, 5}});
  std::string buf;
  Serde<PostingList>::Encode(list, &buf);
  PostingList out;
  EXPECT_FALSE(
      Serde<PostingList>::Decode(Slice(buf.data(), buf.size() - 1), &out));
}

}  // namespace
}  // namespace ngram
