#include "encoding/sequence.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace ngram {
namespace {

TEST(SequenceCodecTest, RoundTrip) {
  const TermSequence seq = {1, 128, 300, 70000, 1};
  std::string buf;
  SequenceCodec::Encode(seq, &buf);
  EXPECT_EQ(buf.size(), SequenceCodec::EncodedSize(seq));
  TermSequence out;
  ASSERT_TRUE(SequenceCodec::Decode(Slice(buf), &out));
  EXPECT_EQ(out, seq);
}

TEST(SequenceCodecTest, EmptySequence) {
  TermSequence seq;
  std::string buf;
  SequenceCodec::Encode(seq, &buf);
  EXPECT_TRUE(buf.empty());
  TermSequence out = {9};
  ASSERT_TRUE(SequenceCodec::Decode(Slice(buf), &out));
  EXPECT_TRUE(out.empty());
}

TEST(SequenceCodecTest, EncodeRange) {
  const TermSequence seq = {10, 20, 30, 40, 50};
  std::string full_range;
  SequenceCodec::EncodeRange(seq, 1, 4, &full_range);
  std::string expected;
  SequenceCodec::Encode({20, 30, 40}, &expected);
  EXPECT_EQ(full_range, expected);
}

TEST(SequenceCodecTest, PrefixEncodingsShareBytes) {
  // No length prefix => the encoding of a prefix is a byte prefix of the
  // encoding of its extension; this is what makes raw suffix comparison
  // cheap.
  std::string shorter, longer;
  SequenceCodec::Encode({5, 1000}, &shorter);
  SequenceCodec::Encode({5, 1000, 3}, &longer);
  EXPECT_TRUE(Slice(longer).starts_with(Slice(shorter)));
}

TEST(SequenceCodecTest, MalformedInputRejected) {
  std::string buf;
  PutVarint32(&buf, 300);
  buf.pop_back();  // Truncate the continuation byte.
  TermSequence out;
  EXPECT_FALSE(SequenceCodec::Decode(Slice(buf), &out));
}

TEST(SequenceReaderTest, IteratesTerms) {
  const TermSequence seq = {7, 77, 777, 7777};
  std::string buf;
  SequenceCodec::Encode(seq, &buf);
  SequenceReader reader((Slice(buf)));
  TermId t = 0;
  for (TermId expected : seq) {
    ASSERT_FALSE(reader.AtEnd());
    ASSERT_TRUE(reader.Next(&t));
    EXPECT_EQ(t, expected);
  }
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_FALSE(reader.Next(&t));
}

TEST(SequenceCodecTest, RandomizedRoundTrip) {
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    TermSequence seq;
    const uint64_t len = rng.Uniform(30);
    for (uint64_t j = 0; j < len; ++j) {
      seq.push_back(1 + static_cast<TermId>(rng.Uniform(1 << 20)));
    }
    std::string buf;
    SequenceCodec::Encode(seq, &buf);
    TermSequence out;
    ASSERT_TRUE(SequenceCodec::Decode(Slice(buf), &out));
    ASSERT_EQ(out, seq);
  }
}

TEST(SequenceDebugStringTest, Formats) {
  EXPECT_EQ(SequenceToDebugString({1, 2, 3}), "<1 2 3>");
  EXPECT_EQ(SequenceToDebugString({}), "<>");
}

}  // namespace
}  // namespace ngram
