#include "text/doc_split.h"

#include <gtest/gtest.h>

#include "core/input.h"

namespace ngram {
namespace {

TEST(DocSplitTest, PaperExample) {
  // Section V: <c b a z b a c> with infrequent z splits into <c b a> and
  // <b a c>. Terms: c=1, b=2, a=3, z=4.
  const TermSequence doc = {1, 2, 3, 4, 2, 3, 1};
  UnigramFrequencies freq = {0, 10, 10, 10, 1};  // cf(z)=1 < tau.
  const auto pieces = SplitAtInfrequentTerms(doc, freq, /*tau=*/3);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], (TermSequence{1, 2, 3}));
  EXPECT_EQ(pieces[1], (TermSequence{2, 3, 1}));
}

TEST(DocSplitTest, NoInfrequentTermsKeepsWhole) {
  const TermSequence doc = {1, 2, 3};
  UnigramFrequencies freq = {0, 5, 5, 5};
  const auto pieces = SplitAtInfrequentTerms(doc, freq, 3);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], doc);
}

TEST(DocSplitTest, AllInfrequentYieldsNothing) {
  const TermSequence doc = {1, 2, 3};
  UnigramFrequencies freq = {0, 1, 1, 1};
  EXPECT_TRUE(SplitAtInfrequentTerms(doc, freq, 5).empty());
}

TEST(DocSplitTest, ConsecutiveInfrequentTermsNoEmptyPieces) {
  const TermSequence doc = {1, 9, 9, 9, 2};
  UnigramFrequencies freq = {0, 5, 5, 0, 0, 0, 0, 0, 0, 1};
  const auto pieces = SplitAtInfrequentTerms(doc, freq, 3);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], (TermSequence{1}));
  EXPECT_EQ(pieces[1], (TermSequence{2}));
}

TEST(DocSplitTest, TermIdBeyondTableTreatedInfrequent) {
  const TermSequence doc = {1, 99, 1};
  UnigramFrequencies freq = {0, 5};
  const auto pieces = SplitAtInfrequentTerms(doc, freq, 2);
  ASSERT_EQ(pieces.size(), 2u);
}

TEST(ForEachPieceTest, TracksBaseOffsets) {
  Fragment fragment;
  fragment.base = 100;
  fragment.terms = {1, 2, 9, 3};
  UnigramFrequencies freq = {0, 5, 5, 5, 0, 0, 0, 0, 0, 1};
  std::vector<Fragment> pieces;
  ForEachPiece(fragment, /*document_splits=*/true, freq, /*tau=*/3,
               [&](const Fragment& p) { pieces.push_back(p); });
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].base, 100u);
  EXPECT_EQ(pieces[0].terms, (TermSequence{1, 2}));
  EXPECT_EQ(pieces[1].base, 103u);  // Position of term 3 in doc space.
  EXPECT_EQ(pieces[1].terms, (TermSequence{3}));
}

TEST(ForEachPieceTest, DisabledPassesThrough) {
  Fragment fragment;
  fragment.base = 7;
  fragment.terms = {1, 9, 1};
  UnigramFrequencies freq = {0, 5, 0, 0, 0, 0, 0, 0, 0, 0};
  std::vector<Fragment> pieces;
  ForEachPiece(fragment, /*document_splits=*/false, freq, /*tau=*/3,
               [&](const Fragment& p) { pieces.push_back(p); });
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], fragment);
}

TEST(ForEachPieceTest, TauOneNeverSplits) {
  Fragment fragment;
  fragment.terms = {1, 2, 3};
  UnigramFrequencies freq = {0, 1, 1, 1};
  std::vector<Fragment> pieces;
  ForEachPiece(fragment, true, freq, /*tau=*/1,
               [&](const Fragment& p) { pieces.push_back(p); });
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].terms, fragment.terms);
}

}  // namespace
}  // namespace ngram
