#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace ngram {
namespace {

using Sentences = std::vector<std::vector<std::string>>;

TEST(TokenizerTest, BasicSentenceSplit) {
  Tokenizer tok;
  const Sentences s = tok.SplitSentences("The cat sat. The dog ran!");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], (std::vector<std::string>{"the", "cat", "sat"}));
  EXPECT_EQ(s[1], (std::vector<std::string>{"the", "dog", "ran"}));
}

TEST(TokenizerTest, LowercasesByDefault) {
  Tokenizer tok;
  const Sentences s = tok.SplitSentences("HELLO World");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, LowercaseDisabled) {
  TokenizerOptions options;
  options.lowercase = false;
  Tokenizer tok(options);
  const Sentences s = tok.SplitSentences("Hello World");
  EXPECT_EQ(s[0], (std::vector<std::string>{"Hello", "World"}));
}

TEST(TokenizerTest, PunctuationSeparatesTokens) {
  Tokenizer tok;
  const Sentences s = tok.SplitSentences("one,two:three (four)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0],
            (std::vector<std::string>{"one", "two", "three", "four"}));
}

TEST(TokenizerTest, ApostrophesKeptInsideWords) {
  Tokenizer tok;
  const Sentences s = tok.SplitSentences("don't stop");
  EXPECT_EQ(s[0], (std::vector<std::string>{"don't", "stop"}));
}

TEST(TokenizerTest, ApostrophesCanBeDisabled) {
  TokenizerOptions options;
  options.keep_apostrophes = false;
  Tokenizer tok(options);
  const Sentences s = tok.SplitSentences("don't");
  EXPECT_EQ(s[0], (std::vector<std::string>{"don", "t"}));
}

TEST(TokenizerTest, NumbersKeptByDefault) {
  Tokenizer tok;
  const Sentences s = tok.SplitSentences("chapter 42 begins");
  EXPECT_EQ(s[0], (std::vector<std::string>{"chapter", "42", "begins"}));
}

TEST(TokenizerTest, QuestionAndSemicolonSplit) {
  Tokenizer tok;
  const Sentences s = tok.SplitSentences("really? yes; of course");
  ASSERT_EQ(s.size(), 3u);
}

TEST(TokenizerTest, AbbreviationsDoNotSplit) {
  Tokenizer tok;
  const Sentences s = tok.SplitSentences("Mr. Smith met Dr. Jones today.");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], (std::vector<std::string>{"mr", "smith", "met", "dr",
                                            "jones", "today"}));
}

TEST(TokenizerTest, SingleInitialDoesNotSplit) {
  Tokenizer tok;
  const Sentences s = tok.SplitSentences("J. R. R. Tolkien wrote it.");
  ASSERT_EQ(s.size(), 1u);
}

TEST(TokenizerTest, BlankLineIsParagraphBoundary) {
  Tokenizer tok;
  const Sentences s = tok.SplitSentences("first paragraph\n\nsecond one");
  ASSERT_EQ(s.size(), 2u);
}

TEST(TokenizerTest, EmptyAndWhitespaceInput) {
  Tokenizer tok;
  EXPECT_TRUE(tok.SplitSentences("").empty());
  EXPECT_TRUE(tok.SplitSentences("  \n\t ...!?").empty());
}

TEST(TokenizerTest, FlatTokenize) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("a b. c d!"),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

}  // namespace
}  // namespace ngram
