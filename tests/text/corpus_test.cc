#include "text/corpus.h"

#include <gtest/gtest.h>

#include "core/input.h"
#include "testing/test_util.h"

namespace ngram {
namespace {

Corpus TwoDocCorpus() {
  Corpus corpus;
  Document d1;
  d1.id = 1;
  d1.year = 1990;
  d1.sentences = {{1, 2, 3}, {2, 2}};
  Document d2;
  d2.id = 2;
  d2.year = 2000;
  d2.sentences = {{5, 1}};
  corpus.docs = {d1, d2};
  return corpus;
}

TEST(CorpusTest, StatsMatchHandComputation) {
  const CorpusStats stats = TwoDocCorpus().ComputeStats();
  EXPECT_EQ(stats.num_documents, 2u);
  EXPECT_EQ(stats.term_occurrences, 7u);
  EXPECT_EQ(stats.num_sentences, 3u);
  EXPECT_EQ(stats.distinct_terms, 4u);  // {1, 2, 3, 5}.
  EXPECT_NEAR(stats.sentence_length_mean, 7.0 / 3.0, 1e-9);
  // Variance of {3, 2, 2} = (9+4+4)/3 - (7/3)^2.
  EXPECT_NEAR(stats.sentence_length_stddev,
              std::sqrt(17.0 / 3.0 - 49.0 / 9.0), 1e-9);
}

TEST(CorpusTest, MaxTermId) {
  EXPECT_EQ(TwoDocCorpus().MaxTermId(), 6u);
  EXPECT_EQ(Corpus{}.MaxTermId(), 1u);
}

TEST(CorpusTest, UnigramFrequencies) {
  const UnigramFrequencies freq =
      ComputeUnigramFrequencies(TwoDocCorpus());
  ASSERT_EQ(freq.size(), 6u);
  EXPECT_EQ(freq[1], 2u);
  EXPECT_EQ(freq[2], 3u);
  EXPECT_EQ(freq[3], 1u);
  EXPECT_EQ(freq[4], 0u);
  EXPECT_EQ(freq[5], 1u);
}

TEST(CorpusTest, SampleFractions) {
  const Corpus corpus = testing::RandomCorpus(1, /*num_docs=*/100);
  EXPECT_EQ(corpus.Sample(100, 7).docs.size(), 100u);
  EXPECT_EQ(corpus.Sample(50, 7).docs.size(), 50u);
  EXPECT_EQ(corpus.Sample(25, 7).docs.size(), 25u);
  EXPECT_EQ(corpus.Sample(0, 7).docs.size(), 0u);
}

TEST(CorpusTest, SampleIsDeterministicAndSorted) {
  const Corpus corpus = testing::RandomCorpus(2, /*num_docs=*/50);
  const Corpus a = corpus.Sample(40, 11);
  const Corpus b = corpus.Sample(40, 11);
  ASSERT_EQ(a.docs.size(), b.docs.size());
  for (size_t i = 0; i < a.docs.size(); ++i) {
    EXPECT_EQ(a.docs[i].id, b.docs[i].id);
    if (i > 0) {
      EXPECT_LT(a.docs[i - 1].id, a.docs[i].id);
    }
  }
  // Different seed -> (almost surely) different subset.
  const Corpus c = corpus.Sample(40, 12);
  bool any_diff = false;
  for (size_t i = 0; i < a.docs.size(); ++i) {
    any_diff |= a.docs[i].id != c.docs[i].id;
  }
  EXPECT_TRUE(any_diff);
}

TEST(CorpusContextTest, RowsPerSentenceWithPositionGaps) {
  const CorpusContext ctx = BuildCorpusContext(TwoDocCorpus());
  // Rows live serialized in ctx.records; decode them back for the check.
  InputTable rows;
  ASSERT_TRUE(mr::DecodeTable(ctx.records, &rows).ok());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows.rows[0].first, 1u);
  EXPECT_EQ(rows.rows[0].second.base, 0u);
  EXPECT_EQ(rows.rows[1].first, 1u);
  // Second sentence starts past a +1 gap: 3 terms + 1.
  EXPECT_EQ(rows.rows[1].second.base, 4u);
  EXPECT_EQ(rows.rows[2].first, 2u);
  EXPECT_EQ(rows.rows[2].second.base, 0u);
  EXPECT_EQ(ctx.total_term_occurrences, 7u);
  // Year lookup table.
  ASSERT_EQ(ctx.doc_years->size(), 3u);
  EXPECT_EQ((*ctx.doc_years)[1], 1990);
  EXPECT_EQ((*ctx.doc_years)[2], 2000);
}

TEST(CorpusStatsTest, TableRendering) {
  const std::string table = TwoDocCorpus().ComputeStats().ToString("TEST");
  EXPECT_NE(table.find("# documents"), std::string::npos);
  EXPECT_NE(table.find("sentence length (stddev)"), std::string::npos);
}

}  // namespace
}  // namespace ngram
