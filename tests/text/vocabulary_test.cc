#include "text/vocabulary.h"

#include <gtest/gtest.h>

#include "text/corpus_builder.h"

namespace ngram {
namespace {

TEST(VocabularyTest, IdsDescendByFrequency) {
  // Section V: "identifiers in descending order of their collection
  // frequency".
  Vocabulary vocab = Vocabulary::Build(
      {{"common", 100}, {"mid", 10}, {"rare", 1}});
  EXPECT_EQ(vocab.Lookup("common"), 1u);
  EXPECT_EQ(vocab.Lookup("mid"), 2u);
  EXPECT_EQ(vocab.Lookup("rare"), 3u);
  EXPECT_EQ(vocab.size(), 3u);
}

TEST(VocabularyTest, TiesBrokenLexicographically) {
  Vocabulary vocab = Vocabulary::Build({{"zebra", 5}, {"apple", 5}});
  EXPECT_EQ(vocab.Lookup("apple"), 1u);
  EXPECT_EQ(vocab.Lookup("zebra"), 2u);
}

TEST(VocabularyTest, UnknownTermIsZero) {
  Vocabulary vocab = Vocabulary::Build({{"a", 1}});
  EXPECT_EQ(vocab.Lookup("nope"), 0u);
}

TEST(VocabularyTest, RoundTripTermOf) {
  Vocabulary vocab = Vocabulary::Build({{"x", 7}, {"y", 3}});
  EXPECT_EQ(vocab.TermOf(vocab.Lookup("x")), "x");
  EXPECT_EQ(vocab.TermOf(vocab.Lookup("y")), "y");
  EXPECT_EQ(vocab.TermOf(0), "<unk>");
  EXPECT_EQ(vocab.TermOf(999), "<unk>");
}

TEST(VocabularyTest, FrequencyRecorded) {
  Vocabulary vocab = Vocabulary::Build({{"x", 7}, {"y", 3}});
  EXPECT_EQ(vocab.FrequencyOf(vocab.Lookup("x")), 7u);
  EXPECT_EQ(vocab.FrequencyOf(vocab.Lookup("y")), 3u);
  EXPECT_EQ(vocab.FrequencyOf(42), 0u);
}

TEST(VocabularyTest, EncodeDropsUnknownTokens) {
  Vocabulary vocab = Vocabulary::Build({{"a", 2}, {"b", 1}});
  const TermSequence seq = vocab.Encode({"a", "mystery", "b"});
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(vocab.Decode(seq), "a b");
}

TEST(CorpusBuilderTest, BuildsEncodedCorpus) {
  TextCorpusBuilder builder;
  builder.Add(1, "the cat sat. the cat ran.", 1999);
  builder.Add(2, "a dog sat", 2001);
  auto built = builder.Finalize();

  ASSERT_EQ(built.corpus.docs.size(), 2u);
  EXPECT_EQ(built.corpus.docs[0].sentences.size(), 2u);
  EXPECT_EQ(built.corpus.docs[0].year, 1999);
  // "the" and "cat" are the most frequent terms -> smallest ids.
  const TermId the_id = built.vocabulary->Lookup("the");
  const TermId dog_id = built.vocabulary->Lookup("dog");
  EXPECT_LT(the_id, dog_id);
  // Decoding the first sentence restores the text.
  EXPECT_EQ(built.vocabulary->Decode(built.corpus.docs[0].sentences[0]),
            "the cat sat");
}

TEST(CorpusBuilderTest, BuilderIsReusableAfterFinalize) {
  TextCorpusBuilder builder;
  builder.Add(1, "alpha beta");
  auto first = builder.Finalize();
  EXPECT_EQ(first.corpus.docs.size(), 1u);
  builder.Add(2, "gamma delta");
  auto second = builder.Finalize();
  EXPECT_EQ(second.corpus.docs.size(), 1u);
  EXPECT_EQ(second.corpus.docs[0].id, 2u);
  EXPECT_EQ(second.vocabulary->Lookup("alpha"), 0u);
}

}  // namespace
}  // namespace ngram
