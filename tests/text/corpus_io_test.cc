#include "text/corpus_io.h"

#include <gtest/gtest.h>

#include <fstream>

#include "corpus/synthetic.h"
#include "mapreduce/io_env.h"
#include "testing/test_util.h"
#include "util/temp_dir.h"

namespace ngram {
namespace {

class CorpusIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("corpus-io-test");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(dir).ValueOrDie());
  }
  std::unique_ptr<TempDir> dir_;
};

bool CorporaEqual(const Corpus& a, const Corpus& b) {
  if (a.docs.size() != b.docs.size()) {
    return false;
  }
  for (size_t i = 0; i < a.docs.size(); ++i) {
    if (a.docs[i].id != b.docs[i].id || a.docs[i].year != b.docs[i].year ||
        a.docs[i].sentences != b.docs[i].sentences) {
      return false;
    }
  }
  return true;
}

TEST_F(CorpusIoTest, RoundTripRandomCorpus) {
  const Corpus original =
      testing::RandomCorpus(5, 30, 8, 4, 12, 1987, 2007);
  const std::string path = dir_->File("corpus.ngc");
  ASSERT_TRUE(WriteCorpusBinary(original, path).ok());
  Corpus loaded;
  ASSERT_TRUE(ReadCorpusBinary(path, &loaded).ok());
  EXPECT_TRUE(CorporaEqual(original, loaded));
}

TEST_F(CorpusIoTest, RoundTripSyntheticCorpus) {
  const Corpus original = GenerateSyntheticCorpus(NytLikeOptions(40, 9));
  const std::string path = dir_->File("nyt.ngc");
  ASSERT_TRUE(WriteCorpusBinary(original, path).ok());
  Corpus loaded;
  ASSERT_TRUE(ReadCorpusBinary(path, &loaded).ok());
  EXPECT_TRUE(CorporaEqual(original, loaded));
}

TEST_F(CorpusIoTest, EmptyCorpus) {
  const std::string path = dir_->File("empty.ngc");
  ASSERT_TRUE(WriteCorpusBinary(Corpus{}, path).ok());
  Corpus loaded;
  loaded.docs.resize(3);
  ASSERT_TRUE(ReadCorpusBinary(path, &loaded).ok());
  EXPECT_TRUE(loaded.docs.empty());
}

TEST_F(CorpusIoTest, RejectsBadMagic) {
  const std::string path = dir_->File("bad.ngc");
  std::ofstream(path) << "BOGUS DATA";
  Corpus loaded;
  EXPECT_TRUE(ReadCorpusBinary(path, &loaded).IsCorruption());
}

TEST_F(CorpusIoTest, RejectsTruncatedFile) {
  const Corpus original = testing::RandomCorpus(6, 10);
  const std::string path = dir_->File("trunc.ngc");
  ASSERT_TRUE(WriteCorpusBinary(original, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::ofstream(path, std::ios::binary)
      << content.substr(0, content.size() / 2);
  Corpus loaded;
  EXPECT_TRUE(ReadCorpusBinary(path, &loaded).IsCorruption());
}

TEST_F(CorpusIoTest, FaultEnvInjectsWriteError) {
  mr::FaultPlan plan;
  plan.kind = mr::FaultPlan::Kind::kWriteError;
  plan.op = 1;
  mr::FaultEnv env(mr::IoEnv::Default(), plan);
  const Corpus corpus = testing::RandomCorpus(3, 10, 6, 4, 10, 1990, 1999);
  const Status st =
      WriteCorpusBinary(corpus, dir_->File("faulted.ngc"), &env);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_TRUE(env.fault_fired());
}

TEST_F(CorpusIoTest, FaultEnvInjectsReadError) {
  const Corpus corpus = testing::RandomCorpus(3, 10, 6, 4, 10, 1990, 1999);
  const std::string path = dir_->File("readable.ngc");
  ASSERT_TRUE(WriteCorpusBinary(corpus, path).ok());
  mr::FaultPlan plan;
  plan.kind = mr::FaultPlan::Kind::kReadError;
  plan.op = 1;
  mr::FaultEnv env(mr::IoEnv::Default(), plan);
  Corpus loaded;
  const Status st = ReadCorpusBinary(path, &loaded, &env);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_TRUE(env.fault_fired());
}

TEST_F(CorpusIoTest, FaultEnvBitFlipSurfacesAsCorruption) {
  // A silent bit flip in the written bytes must surface as Corruption on
  // read-back (never as a silently different corpus).
  const Corpus corpus = testing::RandomCorpus(1, 4, 4, 3, 6, 1990, 1999);
  const std::string path = dir_->File("flipped.ngc");
  mr::FaultPlan plan;
  plan.kind = mr::FaultPlan::Kind::kBitFlip;
  plan.op = 1;
  plan.bit = 3;  // Lands in the leading magic/header bytes.
  mr::FaultEnv env(mr::IoEnv::Default(), plan);
  ASSERT_TRUE(WriteCorpusBinary(corpus, path, &env).ok());
  ASSERT_TRUE(env.fault_fired());
  Corpus loaded;
  const Status st = ReadCorpusBinary(path, &loaded);
  EXPECT_FALSE(st.ok());
}

TEST_F(CorpusIoTest, MissingFileIsIOError) {
  Corpus loaded;
  EXPECT_TRUE(ReadCorpusBinary(dir_->File("nope.ngc"), &loaded).IsIOError());
}


TEST_F(CorpusIoTest, ShardedRoundTripAnyShardCount) {
  const Corpus original =
      testing::RandomCorpus(7, 40, 8, 4, 12, 1987, 2007);
  for (uint32_t shards : {1u, 4u, 16u}) {
    const std::string dir =
        dir_->File("sharded-" + std::to_string(shards));
    ASSERT_TRUE(WriteCorpusSharded(original, dir, shards).ok());
    Corpus loaded;
    ASSERT_TRUE(ReadCorpusSharded(dir, &loaded).ok());
    EXPECT_TRUE(CorporaEqual(original, loaded)) << shards << " shards";
  }
}

TEST_F(CorpusIoTest, ShardedMoreShardsThanDocs) {
  const Corpus original = testing::RandomCorpus(8, 3);
  const std::string dir = dir_->File("oversharded");
  ASSERT_TRUE(WriteCorpusSharded(original, dir, 8).ok());
  Corpus loaded;
  ASSERT_TRUE(ReadCorpusSharded(dir, &loaded).ok());
  EXPECT_TRUE(CorporaEqual(original, loaded));
}

TEST_F(CorpusIoTest, ShardedRejectsZeroShards) {
  EXPECT_TRUE(WriteCorpusSharded(Corpus{}, dir_->File("x"), 0)
                  .IsInvalidArgument());
}

TEST_F(CorpusIoTest, ShardedReadMissingDirFails) {
  Corpus loaded;
  Status st = ReadCorpusSharded(dir_->File("absent-dir"), &loaded);
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace ngram
