#include "kvstore/block_cache.h"

#include <gtest/gtest.h>

namespace ngram::kv {
namespace {

std::shared_ptr<const std::string> Block(const std::string& data) {
  return std::make_shared<const std::string>(data);
}

TEST(BlockCacheTest, InsertAndLookup) {
  BlockCache cache(1024);
  cache.Insert({1, 0}, Block("hello"));
  auto hit = cache.Lookup({1, 0});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "hello");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.Lookup({1, 1}), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BlockCacheTest, EvictsLruWhenOverCapacity) {
  BlockCache cache(10);
  cache.Insert({1, 0}, Block("aaaa"));  // 4 bytes
  cache.Insert({1, 1}, Block("bbbb"));  // 8 bytes total
  ASSERT_NE(cache.Lookup({1, 0}), nullptr);  // Touch 0: now 1 is LRU.
  cache.Insert({1, 2}, Block("cccc"));       // 12 > 10: evict block 1.
  EXPECT_EQ(cache.Lookup({1, 1}), nullptr);
  EXPECT_NE(cache.Lookup({1, 0}), nullptr);
  EXPECT_NE(cache.Lookup({1, 2}), nullptr);
}

TEST(BlockCacheTest, ZeroCapacityDisablesCaching) {
  BlockCache cache(0);
  cache.Insert({1, 0}, Block("data"));
  EXPECT_EQ(cache.Lookup({1, 0}), nullptr);
  EXPECT_EQ(cache.charged_bytes(), 0u);
}

TEST(BlockCacheTest, ReplaceSameKeyUpdatesCharge) {
  BlockCache cache(100);
  cache.Insert({2, 5}, Block("xx"));
  cache.Insert({2, 5}, Block("yyyy"));
  EXPECT_EQ(cache.charged_bytes(), 4u);
  auto hit = cache.Lookup({2, 5});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "yyyy");
}

TEST(BlockCacheTest, EraseFileDropsOnlyThatFile) {
  BlockCache cache(1024);
  cache.Insert({1, 0}, Block("a"));
  cache.Insert({1, 1}, Block("b"));
  cache.Insert({2, 0}, Block("c"));
  cache.EraseFile(1);
  EXPECT_EQ(cache.Lookup({1, 0}), nullptr);
  EXPECT_EQ(cache.Lookup({1, 1}), nullptr);
  EXPECT_NE(cache.Lookup({2, 0}), nullptr);
  EXPECT_EQ(cache.charged_bytes(), 1u);
}

TEST(BlockCacheTest, DistinctFilesDoNotCollide) {
  BlockCache cache(1024);
  cache.Insert({1, 7}, Block("file1"));
  cache.Insert({2, 7}, Block("file2"));
  EXPECT_EQ(*cache.Lookup({1, 7}), "file1");
  EXPECT_EQ(*cache.Lookup({2, 7}), "file2");
}

TEST(BlockCacheTest, SnapshotReportsAllCounters) {
  BlockCache cache(10);
  cache.Insert({1, 0}, Block("aaaa"));
  cache.Insert({1, 1}, Block("bbbb"));
  EXPECT_NE(cache.Lookup({1, 0}), nullptr);    // Hit; 1 becomes LRU.
  EXPECT_EQ(cache.Lookup({9, 9}), nullptr);    // Miss.
  cache.Insert({1, 2}, Block("cccc"));         // Evicts {1, 1}.

  const BlockCacheStats stats = cache.Snapshot();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.charged_bytes, 8u);
  EXPECT_EQ(stats.capacity_bytes, 10u);
  EXPECT_DOUBLE_EQ(stats.hit_ratio(), 0.5);
}

TEST(BlockCacheTest, HitRatioIsZeroBeforeAnyLookup) {
  BlockCache cache(16);
  EXPECT_DOUBLE_EQ(cache.Snapshot().hit_ratio(), 0.0);
}

TEST(BlockCacheTest, AllocateCacheFileIdIsUnique) {
  const uint64_t a = AllocateCacheFileId();
  const uint64_t b = AllocateCacheFileId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace ngram::kv
