#include "kvstore/spillable.h"

#include <gtest/gtest.h>

#include "util/temp_dir.h"

namespace ngram::kv {
namespace {

class SpillableVectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("spillable-test");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(dir).ValueOrDie());
  }
  std::unique_ptr<TempDir> dir_;
};

TEST_F(SpillableVectorTest, StaysInMemoryUnderBudget) {
  SpillableVector<uint64_t> vec(dir_->File("v"), 1 << 20);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(vec.Append(i).ok());
  }
  EXPECT_FALSE(vec.spilled());
  EXPECT_EQ(vec.size(), 100u);
}

TEST_F(SpillableVectorTest, SpillsPastBudgetAndReplaysInOrder) {
  SpillableVector<std::string> vec(dir_->File("v"), 64);
  std::vector<std::string> expected;
  for (int i = 0; i < 50; ++i) {
    const std::string item = "item-" + std::to_string(i);
    ASSERT_TRUE(vec.Append(item).ok());
    expected.push_back(item);
  }
  EXPECT_TRUE(vec.spilled());
  EXPECT_EQ(vec.size(), 50u);

  std::vector<std::string> seen;
  ASSERT_TRUE(vec.ForEach([&](const std::string& s) {
                   seen.push_back(s);
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(seen, expected);
}

TEST_F(SpillableVectorTest, RandomAccessWorksInBothRegimes) {
  SpillableVector<uint64_t> in_mem(dir_->File("a"), 1 << 20);
  SpillableVector<uint64_t> on_disk(dir_->File("b"), 8);
  for (uint64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(in_mem.Append(i * 3).ok());
    ASSERT_TRUE(on_disk.Append(i * 3).ok());
  }
  EXPECT_FALSE(in_mem.spilled());
  EXPECT_TRUE(on_disk.spilled());
  uint64_t v = 0;
  ASSERT_TRUE(in_mem.At(17, &v).ok());
  EXPECT_EQ(v, 51u);
  ASSERT_TRUE(on_disk.At(17, &v).ok());
  EXPECT_EQ(v, 51u);
  EXPECT_EQ(on_disk.At(30, &v).code(), StatusCode::kOutOfRange);
}

TEST_F(SpillableVectorTest, ComplexValueType) {
  using Item = std::pair<TermSequence, uint64_t>;
  SpillableVector<Item> vec(dir_->File("c"), 32);
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(vec.Append({{1, 2, static_cast<TermId>(i)}, i}).ok());
  }
  EXPECT_TRUE(vec.spilled());
  uint64_t count = 0;
  ASSERT_TRUE(vec.ForEach([&](const Item& item) {
                   EXPECT_EQ(item.first[2], count);
                   EXPECT_EQ(item.second, count);
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 20u);
}

TEST_F(SpillableVectorTest, ForEachPropagatesCallbackError) {
  SpillableVector<uint64_t> vec(dir_->File("d"), 1 << 20);
  ASSERT_TRUE(vec.Append(1).ok());
  ASSERT_TRUE(vec.Append(2).ok());
  Status st = vec.ForEach([](const uint64_t& v) {
    return v == 2 ? Status::Cancelled("stop") : Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

TEST_F(SpillableVectorTest, ClearResets) {
  SpillableVector<uint64_t> vec(dir_->File("e"), 8);
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(vec.Append(i).ok());
  }
  vec.Clear();
  EXPECT_EQ(vec.size(), 0u);
  EXPECT_FALSE(vec.spilled());
  ASSERT_TRUE(vec.Append(42).ok());
  EXPECT_EQ(vec.size(), 1u);
}

}  // namespace
}  // namespace ngram::kv
