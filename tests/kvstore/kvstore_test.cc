#include "kvstore/kvstore.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "util/random.h"
#include "util/temp_dir.h"

namespace ngram::kv {
namespace {

class KVStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("kvstore-test");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(dir).ValueOrDie());
  }

  std::string StorePath() const { return dir_->File("store"); }

  std::unique_ptr<TempDir> dir_;
};

TEST_F(KVStoreTest, PutGetRoundTrip) {
  auto store = KVStore::Open(StorePath());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("key1", "value1").ok());
  std::string value;
  ASSERT_TRUE((*store)->Get("key1", &value).ok());
  EXPECT_EQ(value, "value1");
  EXPECT_EQ((*store)->size(), 1u);
}

TEST_F(KVStoreTest, GetMissingIsNotFound) {
  auto store = KVStore::Open(StorePath());
  ASSERT_TRUE(store.ok());
  std::string value;
  EXPECT_TRUE((*store)->Get("absent", &value).IsNotFound());
  EXPECT_FALSE((*store)->Contains("absent"));
}

TEST_F(KVStoreTest, OverwriteReturnsLatest) {
  auto store = KVStore::Open(StorePath());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", "v1").ok());
  ASSERT_TRUE((*store)->Put("k", "v2").ok());
  std::string value;
  ASSERT_TRUE((*store)->Get("k", &value).ok());
  EXPECT_EQ(value, "v2");
  EXPECT_EQ((*store)->size(), 1u);
}

TEST_F(KVStoreTest, DeleteRemovesKey) {
  auto store = KVStore::Open(StorePath());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Put("k", "v").ok());
  ASSERT_TRUE((*store)->Delete("k").ok());
  EXPECT_FALSE((*store)->Contains("k"));
  EXPECT_TRUE((*store)->Delete("k").ok());  // Idempotent.
}

TEST_F(KVStoreTest, EmptyValueAndBinaryKeys) {
  auto store = KVStore::Open(StorePath());
  ASSERT_TRUE(store.ok());
  const std::string binary_key("\x00\x01\xff", 3);
  ASSERT_TRUE((*store)->Put(binary_key, "").ok());
  std::string value = "sentinel";
  ASSERT_TRUE((*store)->Get(binary_key, &value).ok());
  EXPECT_TRUE(value.empty());
}

TEST_F(KVStoreTest, LargeValuesSpanBlocks) {
  KVStoreOptions options;
  options.block_size = 1024;  // Values below will span many blocks.
  auto store = KVStore::Open(StorePath(), options);
  ASSERT_TRUE(store.ok());
  const std::string large(10000, 'z');
  ASSERT_TRUE((*store)->Put("big", large).ok());
  std::string value;
  ASSERT_TRUE((*store)->Get("big", &value).ok());
  EXPECT_EQ(value, large);
}

TEST_F(KVStoreTest, ReopenRecoversIndex) {
  {
    auto store = KVStore::Open(StorePath());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("persist1", "a").ok());
    ASSERT_TRUE((*store)->Put("persist2", "b").ok());
    ASSERT_TRUE((*store)->Put("doomed", "c").ok());
    ASSERT_TRUE((*store)->Delete("doomed").ok());
    ASSERT_TRUE((*store)->Put("persist1", "a2").ok());
  }
  auto reopened = KVStore::Open(StorePath());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->size(), 2u);
  std::string value;
  ASSERT_TRUE((*reopened)->Get("persist1", &value).ok());
  EXPECT_EQ(value, "a2");
  ASSERT_TRUE((*reopened)->Get("persist2", &value).ok());
  EXPECT_EQ(value, "b");
  EXPECT_FALSE((*reopened)->Contains("doomed"));
}

TEST_F(KVStoreTest, SegmentRollOver) {
  KVStoreOptions options;
  options.max_segment_bytes = 512;  // Force several segments.
  auto store = KVStore::Open(StorePath(), options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        (*store)
            ->Put("key" + std::to_string(i), std::string(64, 'v'))
            .ok());
  }
  std::string value;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*store)->Get("key" + std::to_string(i), &value).ok());
    EXPECT_EQ(value, std::string(64, 'v'));
  }
}

TEST_F(KVStoreTest, ScanVisitsAllLiveEntries) {
  auto store = KVStore::Open(StorePath());
  ASSERT_TRUE(store.ok());
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 50; ++i) {
    const std::string k = "k" + std::to_string(i);
    const std::string v = "v" + std::to_string(i * i);
    ASSERT_TRUE((*store)->Put(k, v).ok());
    expected[k] = v;
  }
  ASSERT_TRUE((*store)->Delete("k7").ok());
  expected.erase("k7");

  std::map<std::string, std::string> seen;
  ASSERT_TRUE((*store)
                  ->Scan([&](Slice k, Slice v) {
                    seen[k.ToString()] = v.ToString();
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen, expected);
}

TEST_F(KVStoreTest, CacheHitsOnRepeatedReads) {
  KVStoreOptions options;
  options.block_size = 256;
  auto store = KVStore::Open(StorePath(), options);
  ASSERT_TRUE(store.ok());
  // Fill beyond one block, then read a sealed (non-final) block repeatedly.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        (*store)->Put("k" + std::to_string(i), std::string(32, 'a')).ok());
  }
  std::string value;
  ASSERT_TRUE((*store)->Get("k0", &value).ok());
  ASSERT_TRUE((*store)->Get("k0", &value).ok());
  ASSERT_TRUE((*store)->Get("k0", &value).ok());
  EXPECT_GT((*store)->stats().cache_hits, 0u);
}

TEST_F(KVStoreTest, RandomizedAgainstStdMap) {
  auto store = KVStore::Open(StorePath());
  ASSERT_TRUE(store.ok());
  std::map<std::string, std::string> model;
  Rng rng(99);
  for (int op = 0; op < 2000; ++op) {
    const std::string key = "key" + std::to_string(rng.Uniform(200));
    const int action = static_cast<int>(rng.Uniform(3));
    if (action == 0) {
      const std::string value = "v" + std::to_string(rng());
      ASSERT_TRUE((*store)->Put(key, value).ok());
      model[key] = value;
    } else if (action == 1) {
      ASSERT_TRUE((*store)->Delete(key).ok());
      model.erase(key);
    } else {
      std::string value;
      Status st = (*store)->Get(key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(st.IsNotFound());
      } else {
        ASSERT_TRUE(st.ok());
        EXPECT_EQ(value, it->second);
      }
    }
  }
  EXPECT_EQ((*store)->size(), model.size());
}

// --------------------------------------------------- record CRC trailers --

/// Flips one byte of the single segment file under `dir`.
void FlipSegmentByte(const std::string& dir, std::streamoff offset_from_end) {
  std::string segment;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("seg-", 0) == 0) {
      segment = entry.path().string();
    }
  }
  ASSERT_FALSE(segment.empty());
  std::fstream file(segment, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  ASSERT_GT(size, offset_from_end);
  char byte = 0;
  file.seekg(size - offset_from_end);
  file.get(byte);
  file.seekp(size - offset_from_end);
  file.put(static_cast<char>(byte ^ 0x40));
}

TEST_F(KVStoreTest, ReplayRefusesCorruptedSegment) {
  {
    auto store = KVStore::Open(StorePath());
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(
          (*store)->Put("key" + std::to_string(i), "value-" + std::to_string(i))
              .ok());
    }
  }
  // Hit an early record's key bytes: replay must fail the open with
  // Corruption instead of resurrecting a damaged index.
  FlipSegmentByte(StorePath(), 200);
  auto reopened = KVStore::Open(StorePath());
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption())
      << reopened.status().ToString();
  EXPECT_NE(reopened.status().ToString().find("offset"), std::string::npos)
      << reopened.status().ToString();
}

TEST_F(KVStoreTest, LiveStoreVerifiesRecordCrcOnGet) {
  // Flip a value byte on disk while the store is open (replay never sees
  // it): the Get-path CRC check must refuse the record.
  auto store = KVStore::Open(StorePath());
  ASSERT_TRUE(store.ok());
  const std::string big(100 * 1024, 'z');
  ASSERT_TRUE((*store)->Put("big", big).ok());
  FlipSegmentByte(StorePath(), 5000);  // Inside the value bytes.
  std::string value;
  Status st = (*store)->Get("big", &value);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

}  // namespace
}  // namespace ngram::kv
