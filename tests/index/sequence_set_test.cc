#include "index/sequence_set.h"

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"
#include "util/temp_dir.h"

namespace ngram {
namespace {

TEST(SequenceSetTest, InsertAndContains) {
  SequenceSet set;
  ASSERT_TRUE(set.InsertSequence({1, 2, 3}).ok());
  ASSERT_TRUE(set.InsertSequence({1, 2}).ok());
  std::string scratch;
  EXPECT_TRUE(set.ContainsRange({1, 2, 3}, 0, 3, &scratch));
  EXPECT_TRUE(set.ContainsRange({1, 2, 3}, 0, 2, &scratch));
  EXPECT_FALSE(set.ContainsRange({1, 2, 3}, 1, 3, &scratch));
  EXPECT_EQ(set.size(), 2u);
}

TEST(SequenceSetTest, DuplicatesIgnored) {
  SequenceSet set;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(set.InsertSequence({7, 8}).ok());
  }
  EXPECT_EQ(set.size(), 1u);
}

TEST(SequenceSetTest, EmptySequenceIsStorable) {
  SequenceSet set;
  ASSERT_TRUE(set.InsertSequence({}).ok());
  EXPECT_TRUE(set.Contains(Slice()));
  EXPECT_EQ(set.size(), 1u);
}

TEST(SequenceSetTest, GrowsThroughManyInsertsAndRehashes) {
  SequenceSet set;
  Rng rng(5);
  std::set<TermSequence> model;
  for (int i = 0; i < 20000; ++i) {
    TermSequence seq;
    const uint64_t len = 1 + rng.Uniform(5);
    for (uint64_t j = 0; j < len; ++j) {
      seq.push_back(1 + static_cast<TermId>(rng.Uniform(50)));
    }
    ASSERT_TRUE(set.InsertSequence(seq).ok());
    model.insert(seq);
  }
  EXPECT_EQ(set.size(), model.size());
  std::string scratch;
  for (const auto& seq : model) {
    ASSERT_TRUE(set.ContainsRange(seq, 0, seq.size(), &scratch));
  }
  // Random absent probes.
  for (int i = 0; i < 1000; ++i) {
    TermSequence seq = {1 + static_cast<TermId>(rng.Uniform(50)),
                        100 + static_cast<TermId>(rng.Uniform(50))};
    EXPECT_EQ(set.ContainsRange(seq, 0, seq.size(), &scratch),
              model.count(seq) > 0);
  }
}

TEST(SequenceSetTest, SpillsToKvStorePastBudget) {
  auto dir = TempDir::Create("seqset-test");
  ASSERT_TRUE(dir.ok());
  SequenceSet::Options options;
  options.memory_budget_bytes = 4096;
  options.spill_dir = dir->File("spill");
  SequenceSet set(options);

  std::vector<TermSequence> inserted;
  for (TermId i = 1; i <= 2000; ++i) {
    const TermSequence seq = {i, i + 1, i + 2};
    ASSERT_TRUE(set.InsertSequence(seq).ok());
    inserted.push_back(seq);
  }
  EXPECT_TRUE(set.spilled());
  EXPECT_EQ(set.size(), 2000u);
  std::string scratch;
  for (const auto& seq : inserted) {
    ASSERT_TRUE(set.ContainsRange(seq, 0, seq.size(), &scratch))
        << seq[0];
  }
  EXPECT_FALSE(set.ContainsRange({90000, 1, 2}, 0, 3, &scratch));
  // Memory footprint collapsed after spilling.
  EXPECT_LT(set.MemoryBytes(), options.memory_budget_bytes * 4);
}

TEST(SequenceSetTest, OverBudgetWithoutSpillDirFails) {
  SequenceSet::Options options;
  options.memory_budget_bytes = 64;
  SequenceSet set(options);
  Status last;
  for (TermId i = 1; i <= 100 && last.ok(); ++i) {
    last = set.InsertSequence({i, i, i, i});
  }
  EXPECT_TRUE(last.IsResourceExhausted());
}

TEST(SequenceSetTest, InsertAfterSpillDeduplicates) {
  auto dir = TempDir::Create("seqset-test");
  ASSERT_TRUE(dir.ok());
  SequenceSet::Options options;
  options.memory_budget_bytes = 256;
  options.spill_dir = dir->File("spill");
  SequenceSet set(options);
  for (TermId i = 1; i <= 200; ++i) {
    ASSERT_TRUE(set.InsertSequence({i}).ok());
  }
  ASSERT_TRUE(set.spilled());
  const uint64_t before = set.size();
  ASSERT_TRUE(set.InsertSequence({5}).ok());  // Already present.
  EXPECT_EQ(set.size(), before);
}

}  // namespace
}  // namespace ngram
