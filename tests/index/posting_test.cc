#include "index/posting.h"

#include <gtest/gtest.h>

namespace ngram {
namespace {

PostingList MakeList(
    std::initializer_list<std::pair<uint64_t, std::vector<uint32_t>>> items) {
  PostingList list;
  for (const auto& [doc, positions] : items) {
    list.postings.push_back({doc, positions});
  }
  return list;
}

TEST(PostingJoinTest, PaperExample) {
  // Section III-B: <a x> : <d1:[0], d2:[1], d3:[2]> joined with
  // <x b> : <d1:[1], d2:[2], d3:[0,3]> yields
  // <a x b> : <d1:[0], d2:[1], d3:[2]>.
  const PostingList ax = MakeList({{1, {0}}, {2, {1}}, {3, {2}}});
  const PostingList xb = MakeList({{1, {1}}, {2, {2}}, {3, {0, 3}}});
  const PostingList joined = JoinAdjacent(ax, xb);
  EXPECT_EQ(joined, MakeList({{1, {0}}, {2, {1}}, {3, {2}}}));
  EXPECT_EQ(joined.TotalOccurrences(), 3u);
}

TEST(PostingJoinTest, NoCommonDocuments) {
  const PostingList a = MakeList({{1, {0}}, {3, {5}}});
  const PostingList b = MakeList({{2, {1}}, {4, {6}}});
  EXPECT_TRUE(JoinAdjacent(a, b).postings.empty());
}

TEST(PostingJoinTest, CommonDocNoAdjacentPositions) {
  const PostingList a = MakeList({{1, {0, 10}}});
  const PostingList b = MakeList({{1, {5, 20}}});
  EXPECT_TRUE(JoinAdjacent(a, b).postings.empty());
}

TEST(PostingJoinTest, OverlappingOccurrences) {
  // "aaa" within "aaaa": positions of "aa" are {0,1,2}; joining "aa" with
  // "aa" gives "aaa" at {0,1}.
  const PostingList aa = MakeList({{7, {0, 1, 2}}});
  const PostingList joined = JoinAdjacent(aa, aa);
  EXPECT_EQ(joined, MakeList({{7, {0, 1}}}));
}

TEST(PostingJoinTest, MixedDocsPartialMatches) {
  const PostingList left = MakeList({{1, {0}}, {2, {3, 7}}, {5, {1}}});
  const PostingList right = MakeList({{2, {4, 9}}, {5, {3}}, {9, {0}}});
  const PostingList joined = JoinAdjacent(left, right);
  EXPECT_EQ(joined, MakeList({{2, {3}}}));
}

TEST(PostingJoinTest, EmptyInputs) {
  const PostingList empty;
  const PostingList a = MakeList({{1, {0}}});
  EXPECT_TRUE(JoinAdjacent(empty, a).postings.empty());
  EXPECT_TRUE(JoinAdjacent(a, empty).postings.empty());
}

TEST(PostingListTest, FrequencyHelpers) {
  const PostingList list = MakeList({{1, {0, 2}}, {4, {1}}});
  EXPECT_EQ(list.TotalOccurrences(), 3u);
  EXPECT_EQ(list.DocumentFrequency(), 2u);
}

}  // namespace
}  // namespace ngram
