#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace ngram {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ParallelismIsBoundedBySlotCount) {
  ThreadPool pool(2);
  std::atomic<int> running{0};
  std::atomic<int> max_running{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&] {
      const int now = running.fetch_add(1) + 1;
      int prev = max_running.load();
      while (now > prev && !max_running.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      running.fetch_sub(1);
    });
  }
  pool.Wait();
  EXPECT_LE(max_running.load(), 2);
  EXPECT_GE(max_running.load(), 1);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace ngram
