#include "util/random.h"

#include <gtest/gtest.h>

#include <set>

namespace ngram {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differ = 0;
  for (int i = 0; i < 16; ++i) {
    if (a() != b()) {
      ++differ;
    }
  }
  EXPECT_GT(differ, 12);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversSupport) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.Uniform(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, OneInRespectsProbabilityRoughly) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.OneIn(0.25)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.03);
}

}  // namespace
}  // namespace ngram
