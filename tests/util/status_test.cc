#include "util/status.h"

#include <gtest/gtest.h>

#include "util/macros.h"
#include "util/result.h"

namespace ngram {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::NotImplemented("x").code(),
            StatusCode::kNotImplemented);
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status s = Status::NotFound("missing");
  Status copy = s;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), "missing");
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsNotFound());

  Status ok;
  Status ok_copy = ok;
  EXPECT_TRUE(ok_copy.ok());
}

TEST(StatusTest, WithContextPrefixesMessage) {
  Status s = Status::IOError("write failed").WithContext("spill file");
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "spill file: write failed");
  EXPECT_TRUE(Status().WithContext("ignored").ok());
}

Status FailingHelper() { return Status::Corruption("bad bytes"); }

Status PropagatingHelper() {
  NGRAM_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(PropagatingHelper().IsCorruption());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

Result<int> MakeValue(bool fail) {
  if (fail) {
    return Status::InvalidArgument("fail requested");
  }
  return 7;
}

Status ConsumeResult(bool fail, int* out) {
  NGRAM_ASSIGN_OR_RETURN(*out, MakeValue(fail));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int v = 0;
  EXPECT_TRUE(ConsumeResult(false, &v).ok());
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(ConsumeResult(true, &v).IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).ValueOrDie();
  EXPECT_EQ(*owned, 5);
}

}  // namespace
}  // namespace ngram
