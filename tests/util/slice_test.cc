#include "util/slice.h"

#include <gtest/gtest.h>

namespace ngram {
namespace {

TEST(SliceTest, EmptyByDefault) {
  Slice s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(SliceTest, FromString) {
  std::string str = "hello";
  Slice s(str);
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.ToString(), "hello");
  EXPECT_EQ(s[1], 'e');
}

TEST(SliceTest, FromCString) {
  Slice s("abc");
  EXPECT_EQ(s.size(), 3u);
}

TEST(SliceTest, RemovePrefix) {
  Slice s("abcdef");
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "cdef");
}

TEST(SliceTest, CompareIsMemcmpOrder) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  // Prefix orders before its extension.
  EXPECT_LT(Slice("ab").compare(Slice("abc")), 0);
  EXPECT_GT(Slice("abc").compare(Slice("ab")), 0);
}

TEST(SliceTest, EqualityAndLessOperators) {
  EXPECT_TRUE(Slice("xy") == Slice("xy"));
  EXPECT_TRUE(Slice("xy") != Slice("xz"));
  EXPECT_TRUE(Slice("a") < Slice("b"));
  EXPECT_TRUE(Slice() == Slice(""));
}

TEST(SliceTest, StartsWith) {
  Slice s("abcdef");
  EXPECT_TRUE(s.starts_with(Slice("abc")));
  EXPECT_TRUE(s.starts_with(Slice()));
  EXPECT_FALSE(s.starts_with(Slice("abd")));
  EXPECT_FALSE(Slice("ab").starts_with(Slice("abc")));
}

TEST(SliceTest, EmbeddedNulBytesCompareCorrectly) {
  const std::string a("a\0b", 3);
  const std::string b("a\0c", 3);
  EXPECT_LT(Slice(a).compare(Slice(b)), 0);
  EXPECT_EQ(Slice(a).size(), 3u);
}

}  // namespace
}  // namespace ngram
