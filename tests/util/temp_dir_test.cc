#include "util/temp_dir.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace ngram {
namespace {

TEST(TempDirTest, CreatesAndRemoves) {
  std::filesystem::path path;
  {
    auto dir = TempDir::Create("ngram-test");
    ASSERT_TRUE(dir.ok());
    path = dir->path();
    EXPECT_TRUE(std::filesystem::exists(path));
    // Write a file inside so removal must be recursive.
    std::ofstream(dir->File("inner.txt")) << "data";
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(TempDirTest, DistinctDirectories) {
  auto a = TempDir::Create("ngram-test");
  auto b = TempDir::Create("ngram-test");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->path(), b->path());
}

TEST(TempDirTest, MoveTransfersOwnership) {
  auto a = TempDir::Create("ngram-test");
  ASSERT_TRUE(a.ok());
  const std::filesystem::path path = a->path();
  TempDir moved = std::move(a).ValueOrDie();
  EXPECT_EQ(moved.path(), path);
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(TempDirTest, FileHelperJoinsPath) {
  auto dir = TempDir::Create("ngram-test");
  ASSERT_TRUE(dir.ok());
  const std::string f = dir->File("x.bin");
  EXPECT_EQ(f, (dir->path() / "x.bin").string());
}

}  // namespace
}  // namespace ngram
