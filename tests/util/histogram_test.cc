#include "util/histogram.h"

#include <gtest/gtest.h>

namespace ngram {
namespace {

TEST(Log10Histogram2DTest, BucketBoundaries) {
  Log10Histogram2D h;
  h.Add(1, 1);     // (0, 0)
  h.Add(9, 9);     // (0, 0)
  h.Add(10, 10);   // (1, 1)
  h.Add(99, 100);  // (1, 2)
  h.Add(100, 999); // (2, 2)
  EXPECT_EQ(h.BucketCount(0, 0), 2u);
  EXPECT_EQ(h.BucketCount(1, 1), 1u);
  EXPECT_EQ(h.BucketCount(1, 2), 1u);
  EXPECT_EQ(h.BucketCount(2, 2), 1u);
  EXPECT_EQ(h.BucketCount(3, 3), 0u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.max_x_bucket(), 2);
  EXPECT_EQ(h.max_y_bucket(), 2);
}

TEST(Log10Histogram2DTest, WeightsAccumulate) {
  Log10Histogram2D h;
  h.Add(5, 5, 10);
  h.Add(5, 7, 5);
  EXPECT_EQ(h.BucketCount(0, 0), 15u);
}

TEST(Log10Histogram2DTest, ZeroCoordinatesIgnored) {
  Log10Histogram2D h;
  h.Add(0, 5);
  h.Add(5, 0);
  h.Add(3, 3, 0);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.max_x_bucket(), -1);
}

TEST(Log10Histogram2DTest, BucketsListingIsSorted) {
  Log10Histogram2D h;
  h.Add(100, 1);
  h.Add(1, 100);
  h.Add(10, 10);
  auto buckets = h.Buckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0].first, std::make_pair(0, 2));
  EXPECT_EQ(buckets[1].first, std::make_pair(1, 1));
  EXPECT_EQ(buckets[2].first, std::make_pair(2, 0));
}

TEST(Log10Histogram2DTest, TableRendersAllBuckets) {
  Log10Histogram2D h;
  h.Add(1, 1);
  h.Add(10, 100);
  const std::string table = h.ToTable("len", "cf");
  EXPECT_NE(table.find("10^0"), std::string::npos);
  EXPECT_NE(table.find("10^1"), std::string::npos);
  EXPECT_NE(table.find("1"), std::string::npos);
}

}  // namespace
}  // namespace ngram
