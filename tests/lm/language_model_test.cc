#include "lm/language_model.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/runner.h"
#include "testing/test_util.h"

namespace ngram::lm {
namespace {

/// Tiny corpus: "1 2 3" twice, "1 2 4" once => f(1 2)=3, f(1 2 3)=2,
/// f(1 2 4)=1, N = 9.
Corpus TinyCorpus() {
  Corpus corpus;
  Document d1;
  d1.id = 1;
  d1.sentences = {{1, 2, 3}, {1, 2, 3}};
  Document d2;
  d2.id = 2;
  d2.sentences = {{1, 2, 4}};
  corpus.docs = {d1, d2};
  return corpus;
}

StupidBackoffModel BuildTinyModel(double alpha = 0.4) {
  NgramStatistics stats = BruteForceCounts(TinyCorpus(), 1, 3);
  LanguageModelOptions options;
  options.order = 3;
  options.backoff_alpha = alpha;
  auto model = StupidBackoffModel::Build(std::move(stats), options);
  EXPECT_TRUE(model.ok());
  return std::move(model).ValueOrDie();
}

TEST(StupidBackoffTest, RelativeFrequencyAtHighestOrder) {
  const StupidBackoffModel model = BuildTinyModel();
  // f(<1 2 3>) / f(<1 2>) = 2/3.
  EXPECT_DOUBLE_EQ(model.Score({1, 2}, 3), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(model.Score({1, 2}, 4), 1.0 / 3.0);
}

TEST(StupidBackoffTest, UnigramBaseCase) {
  const StupidBackoffModel model = BuildTinyModel();
  EXPECT_EQ(model.total_unigrams(), 9u);
  // f(<1>) / N = 3/9.
  EXPECT_DOUBLE_EQ(model.Score({}, 1), 3.0 / 9.0);
  EXPECT_DOUBLE_EQ(model.Score({}, 3), 2.0 / 9.0);
}

TEST(StupidBackoffTest, BackoffAppliesAlphaPerLevel) {
  const StupidBackoffModel model = BuildTinyModel(0.5);
  // Context <3 1>: trigram <3 1 2> unseen; bigram <1 2> seen:
  // S = alpha * f(<1 2>) / f(<1>) = 0.5 * 3/3.
  EXPECT_DOUBLE_EQ(model.Score({3, 1}, 2), 0.5 * 1.0);
  // Context <4>: bigram <4 x> unseen for x=1; backoff to unigram:
  // S = alpha * f(<1>)/N = 0.5 * 3/9.
  EXPECT_DOUBLE_EQ(model.Score({4}, 1), 0.5 * 3.0 / 9.0);
}

TEST(StupidBackoffTest, UnseenWordGetsFloor) {
  const StupidBackoffModel model = BuildTinyModel(0.4);
  const double score = model.Score({1, 2}, 99);
  EXPECT_GT(score, 0.0);
  EXPECT_LT(score, 1e-8);
}

TEST(StupidBackoffTest, SeenOrderingBeatsUnseen) {
  const StupidBackoffModel model = BuildTinyModel();
  EXPECT_GT(model.Score({1, 2}, 3), model.Score({1, 2}, 4));
  EXPECT_GT(model.Score({1, 2}, 4), model.Score({1, 2}, 99));
}

TEST(StupidBackoffTest, SentenceLogScoreAccumulates) {
  const StupidBackoffModel model = BuildTinyModel();
  const double log_123 = model.SentenceLogScore({1, 2, 3});
  const double log_124 = model.SentenceLogScore({1, 2, 4});
  EXPECT_GT(log_123, log_124);  // The more frequent sentence scores higher.
}

TEST(StupidBackoffTest, BuildValidatesOptions) {
  NgramStatistics stats;
  stats.Add({1}, 1);
  LanguageModelOptions bad;
  bad.order = 0;
  EXPECT_FALSE(StupidBackoffModel::Build(stats, bad).ok());
  bad.order = 3;
  bad.backoff_alpha = 0.0;
  EXPECT_FALSE(StupidBackoffModel::Build(stats, bad).ok());
  NgramStatistics empty;
  EXPECT_FALSE(
      StupidBackoffModel::Build(empty, LanguageModelOptions{}).ok());
}

TEST(StupidBackoffTest, TopContinuations) {
  const StupidBackoffModel model = BuildTinyModel();
  const auto top = model.TopContinuations({1, 2}, 5);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 3u);  // 2/3 beats 1/3.
  EXPECT_EQ(top[1].first, 4u);
  EXPECT_GT(top[0].second, top[1].second);
}

TEST(StupidBackoffTest, PerplexityLowerOnTrainingLikeData) {
  // Model trained on a synthetic corpus must fit held-out data from the
  // same distribution better than scrambled data.
  const Corpus train = testing::RandomCorpus(700, 80, 6, 3, 12);
  const Corpus held_out = testing::RandomCorpus(701, 20, 6, 3, 12);
  // Scrambled: same shape but a disjoint vocabulary range.
  Corpus scrambled = testing::RandomCorpus(702, 20, 6, 3, 12);
  for (auto& doc : scrambled.docs) {
    for (auto& sentence : doc.sentences) {
      for (auto& t : sentence) {
        t += 100;  // Shift into unseen term space.
      }
    }
  }

  NgramStatistics stats = BruteForceCounts(train, 1, 4);
  LanguageModelOptions options;
  options.order = 4;
  auto model = StupidBackoffModel::Build(std::move(stats), options);
  ASSERT_TRUE(model.ok());
  const double ppl_held_out = model->Perplexity(held_out);
  const double ppl_scrambled = model->Perplexity(scrambled);
  EXPECT_GT(ppl_held_out, 1.0);
  EXPECT_LT(ppl_held_out, ppl_scrambled);
}

TEST(StupidBackoffTest, WorksOnMapReduceComputedStatistics) {
  // End-to-end: statistics from SUFFIX-sigma feed the model directly.
  const Corpus corpus = testing::RandomCorpus(703, 50, 6, 3, 12);
  auto run = ComputeNgramStatistics(
      corpus, testing::TestOptions(Method::kSuffixSigma, 1, 3));
  ASSERT_TRUE(run.ok());
  LanguageModelOptions options;
  options.order = 3;
  auto model = StupidBackoffModel::Build(std::move(run->stats), options);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->Score({}, 1), 0.0);
  EXPECT_GT(model->SentenceLogScore({1, 2, 3}), -100.0);
}

}  // namespace
}  // namespace ngram::lm
