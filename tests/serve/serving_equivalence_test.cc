// Cross-method serving equivalence: shards built from the output of every
// method (NAIVE, APRIORI-SCAN, APRIORI-INDEX, SUFFIX-sigma) on a
// fig6-style synthetic corpus must answer Count and TopKCompletions
// byte-identically — across methods, shard counts {1, 3, 8}, and cache
// sizes {tiny, unbounded}. The serving layer must not introduce any
// dependence on how the statistics were computed or how they are
// partitioned.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/runner.h"
#include "corpus/synthetic.h"
#include "serve/serving_builder.h"
#include "serve/stats_service.h"
#include "testing/test_util.h"
#include "util/temp_dir.h"

namespace ngram::serve {
namespace {

constexpr uint64_t kTau = 3;
constexpr uint32_t kSigma = 5;

const Corpus& Fig6Corpus() {
  static const Corpus corpus =
      GenerateSyntheticCorpus(NytLikeOptions(250, 42));
  return corpus;
}

/// Statistics computed by `method` on the fig6 corpus, canonically sorted.
NgramStatistics ComputeWith(Method method) {
  const CorpusContext ctx = BuildCorpusContext(Fig6Corpus());
  auto run = ComputeNgramStatistics(
      ctx, ngram::testing::TestOptions(method, kTau, kSigma));
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  run->stats.SortCanonical();
  return std::move(run->stats);
}

struct ServingCase {
  Method method;
  uint32_t num_shards;
  size_t cache_bytes;
};

std::string CaseName(const ::testing::TestParamInfo<ServingCase>& info) {
  const auto& c = info.param;
  std::string name = MethodName(c.method);
  name += "_shards" + std::to_string(c.num_shards);
  name += c.cache_bytes == 0              ? "_nocache"
          : c.cache_bytes < (1u << 20)    ? "_tinycache"
                                          : "_bigcache";
  for (auto& ch : name) {
    if (ch == '-') {
      ch = '_';
    }
  }
  return name;
}

class ServingEquivalenceTest : public ::testing::TestWithParam<ServingCase> {
};

/// The reference: NAIVE output served from a single uncached shard.
const NgramStatistics& ReferenceStats() {
  static const NgramStatistics stats = ComputeWith(Method::kNaive);
  return stats;
}

/// Reference answers precomputed once from the statistics table.
struct Reference {
  std::vector<std::pair<TermSequence, uint64_t>> counts;
  std::map<TermSequence, std::vector<Completion>> topk;
  double perplexity = 0.0;
};

const Reference& Ref() {
  static const Reference ref = [] {
    Reference r;
    const NgramStatistics& stats = ReferenceStats();
    r.counts.assign(stats.entries.begin(), stats.entries.end());
    // Top-k per distinct prefix (each entry minus its last term) straight
    // from the table: one-term extensions ranked by count desc, term asc.
    std::map<TermSequence, std::vector<Completion>> extensions;
    for (const auto& [seq, cf] : stats.entries) {
      TermSequence prefix(seq.begin(), seq.end() - 1);
      extensions[prefix].push_back(Completion{seq.back(), cf});
    }
    for (auto& [prefix, completions] : extensions) {
      std::sort(completions.begin(), completions.end(),
                [](const Completion& a, const Completion& b) {
                  if (a.count != b.count) {
                    return a.count > b.count;
                  }
                  return a.term < b.term;
                });
      if (completions.size() > 10) {
        completions.resize(10);
      }
      r.topk[prefix] = std::move(completions);
    }
    return r;
  }();
  return ref;
}

TEST_P(ServingEquivalenceTest, CountTopKAndPerplexityMatchReference) {
  const ServingCase& c = GetParam();
  const NgramStatistics stats = ComputeWith(c.method);
  // Methods agree (established by PR 1-4's equivalence suite); both sides
  // are canonically sorted, so entry vectors compare directly.
  ASSERT_TRUE(stats.entries == ReferenceStats().entries);

  auto dir = TempDir::Create("serving-equivalence");
  ASSERT_TRUE(dir.ok()) << dir.status().ToString();
  BuildServingOptions build;
  build.num_shards = c.num_shards;
  build.block_bytes = 512;  // Small blocks: several per shard.
  ASSERT_TRUE(
      BuildServingShards(stats, dir->path().string(), build).ok());

  ServingOptions serving;
  serving.cache_bytes = c.cache_bytes;
  auto service = StatsService::Open(dir->path().string(), serving);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  const Reference& ref = Ref();
  // Every stored n-gram answers its exact frequency. With a tiny cache
  // this also churns eviction on every block boundary.
  for (const auto& [seq, cf] : ref.counts) {
    auto count = (*service)->Count(seq);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    ASSERT_EQ(*count, cf) << SequenceToDebugString(seq);
  }
  // Absent n-grams answer zero, not an error.
  for (const auto& [seq, cf] : ref.counts) {
    TermSequence absent = seq;
    absent.push_back(999983);  // Far beyond the vocabulary.
    auto count = (*service)->Count(absent);
    ASSERT_TRUE(count.ok()) << count.status().ToString();
    ASSERT_EQ(*count, 0u);
  }
  // Top-k completions are byte-identical to the table-derived reference
  // for every stored prefix (including the empty prefix = top unigrams).
  for (const auto& [prefix, expected] : ref.topk) {
    auto completions = (*service)->TopKCompletions(prefix, 10);
    ASSERT_TRUE(completions.ok()) << completions.status().ToString();
    ASSERT_EQ(*completions, expected) << SequenceToDebugString(prefix);
  }
  // Perplexity of a held-out slice is identical across every
  // configuration (same counts -> same arithmetic, bit for bit).
  Corpus held_out;
  held_out.docs.assign(Fig6Corpus().docs.begin(),
                       Fig6Corpus().docs.begin() + 10);
  auto perplexity = (*service)->Perplexity(held_out);
  ASSERT_TRUE(perplexity.ok()) << perplexity.status().ToString();
  EXPECT_GT(*perplexity, 0.0);
  static double first_perplexity = 0.0;
  if (first_perplexity == 0.0) {
    first_perplexity = *perplexity;
  }
  EXPECT_DOUBLE_EQ(*perplexity, first_perplexity);
}

std::vector<ServingCase> MakeCases() {
  std::vector<ServingCase> cases;
  const Method methods[] = {Method::kNaive, Method::kAprioriScan,
                            Method::kAprioriIndex, Method::kSuffixSigma};
  for (Method method : methods) {
    for (uint32_t shards : {1u, 3u, 8u}) {
      // Tiny cache (evicts constantly) and effectively unbounded.
      for (size_t cache_bytes : {size_t{2048}, size_t{256} << 20}) {
        cases.push_back({method, shards, cache_bytes});
      }
    }
  }
  // Cache fully disabled: the pure mmap-decode path.
  cases.push_back({Method::kSuffixSigma, 3, 0});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllMethods, ServingEquivalenceTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

}  // namespace
}  // namespace ngram::serve
