// Concurrent-reader stress: 16 threads drive a mixed Count / top-k /
// perplexity workload against one StatsService while the block cache
// churns at a tiny capacity, verifying every answer against
// single-threaded expectations. A second test adds Reload() swapping
// between shard layouts mid-flight: answers must stay correct because
// both layouts serve the same statistics and in-flight queries finish on
// the snapshot they started with.
//
// This suite is the serving half of the ThreadSanitizer CI step (with
// ThreadPoolTest.* and JobTest.*): the lock-freedom claim of the read
// path is only believable under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/brute_force.h"
#include "serve/serving_builder.h"
#include "serve/stats_service.h"
#include "testing/test_util.h"
#include "util/random.h"
#include "util/temp_dir.h"

namespace ngram::serve {
namespace {

constexpr int kThreads = 16;
constexpr int kOpsPerThread = 400;

struct Expectations {
  std::vector<std::pair<TermSequence, uint64_t>> counts;
  std::map<TermSequence, std::vector<Completion>> topk;
  std::vector<TermSequence> sentences;
  std::vector<double> sentence_perplexities;
};

Corpus StressCorpus() {
  return ngram::testing::RandomCorpus(77, 40, 10, 4, 14);
}

NgramStatistics StressStats() {
  NgramStatistics stats = BruteForceCounts(StressCorpus(), 2, 4);
  stats.SortCanonical();
  return stats;
}

/// Single-threaded ground truth, computed once against the service itself
/// before any concurrency starts (the serving layer's correctness against
/// the table is established by serving_equivalence_test).
Expectations Precompute(const StatsService& service,
                        const NgramStatistics& stats, const Corpus& corpus) {
  Expectations expect;
  expect.counts.assign(stats.entries.begin(), stats.entries.end());
  for (const auto& [seq, cf] : stats.entries) {
    TermSequence prefix(seq.begin(), seq.end() - 1);
    if (expect.topk.count(prefix) == 0) {
      auto completions = service.TopKCompletions(prefix, 5);
      EXPECT_TRUE(completions.ok()) << completions.status().ToString();
      expect.topk[prefix] = *completions;
    }
  }
  for (const auto& doc : corpus.docs) {
    for (const auto& sentence : doc.sentences) {
      if (expect.sentences.size() >= 16) {
        break;
      }
      expect.sentences.push_back(sentence);
      auto perplexity = service.SentencePerplexity(sentence);
      EXPECT_TRUE(perplexity.ok()) << perplexity.status().ToString();
      expect.sentence_perplexities.push_back(*perplexity);
    }
  }
  return expect;
}

/// Runs the mixed workload on `threads` threads; every mismatch or error
/// increments `failures`. Returns total operations executed.
uint64_t HammerService(const StatsService& service,
                       const Expectations& expect, int threads,
                       int ops_per_thread, std::atomic<uint64_t>* failures) {
  std::vector<std::thread> workers;
  workers.reserve(threads);
  std::atomic<uint64_t> ops{0};
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(900 + t);
      for (int i = 0; i < ops_per_thread; ++i) {
        const double mix = rng.NextDouble();
        if (mix < 0.60) {
          const auto& [seq, cf] =
              expect.counts[rng.Uniform(expect.counts.size())];
          auto count = service.Count(seq);
          if (!count.ok() || *count != cf) {
            failures->fetch_add(1);
          }
        } else if (mix < 0.90) {
          auto it = expect.topk.begin();
          std::advance(it, rng.Uniform(expect.topk.size()));
          auto completions = service.TopKCompletions(it->first, 5);
          if (!completions.ok() || *completions != it->second) {
            failures->fetch_add(1);
          }
        } else {
          const size_t s = rng.Uniform(expect.sentences.size());
          auto perplexity =
              service.SentencePerplexity(expect.sentences[s]);
          if (!perplexity.ok() ||
              *perplexity != expect.sentence_perplexities[s]) {
            failures->fetch_add(1);
          }
        }
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  return ops.load();
}

TEST(ServingStressTest, SixteenThreadsTinyCacheAgreeWithExpectations) {
  const Corpus corpus = StressCorpus();
  const NgramStatistics stats = StressStats();
  auto dir = TempDir::Create("serving-stress");
  ASSERT_TRUE(dir.ok());
  BuildServingOptions build;
  build.num_shards = 5;
  build.block_bytes = 256;  // Many blocks...
  ASSERT_TRUE(BuildServingShards(stats, dir->path().string(), build).ok());

  ServingOptions serving;
  serving.cache_bytes = 1024;  // ...through a cache holding ~2 of them.
  auto service = StatsService::Open(dir->path().string(), serving);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  const Expectations expect = Precompute(**service, stats, corpus);
  ASSERT_FALSE(expect.counts.empty());
  ASSERT_FALSE(expect.sentences.empty());

  std::atomic<uint64_t> failures{0};
  const uint64_t ops =
      HammerService(**service, expect, kThreads, kOpsPerThread, &failures);
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(ops, static_cast<uint64_t>(kThreads) * kOpsPerThread);

  // The tiny cache really churned (and its counters kept up atomically).
  const kv::BlockCacheStats cache = (*service)->CacheStats();
  EXPECT_GT(cache.evictions, 0u);
  EXPECT_EQ(cache.misses, cache.inserts);  // Every miss decoded + inserted.
  EXPECT_LE(cache.charged_bytes, size_t{1024} + 4096);
}

TEST(ServingStressTest, ReloadSwapsLayoutsUnderReaders) {
  const Corpus corpus = StressCorpus();
  const NgramStatistics stats = StressStats();
  // Two directories, same statistics, different shard layouts.
  auto dir_a = TempDir::Create("serving-reload-a");
  auto dir_b = TempDir::Create("serving-reload-b");
  ASSERT_TRUE(dir_a.ok() && dir_b.ok());
  BuildServingOptions build;
  build.block_bytes = 256;
  build.num_shards = 1;
  ASSERT_TRUE(
      BuildServingShards(stats, dir_a->path().string(), build).ok());
  build.num_shards = 7;
  ASSERT_TRUE(
      BuildServingShards(stats, dir_b->path().string(), build).ok());

  ServingOptions serving;
  serving.cache_bytes = 2048;
  auto service = StatsService::Open(dir_a->path().string(), serving);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const Expectations expect = Precompute(**service, stats, corpus);

  std::atomic<uint64_t> failures{0};
  std::atomic<bool> stop{false};
  std::thread reloader([&] {
    const std::string dirs[] = {dir_b->path().string(),
                                dir_a->path().string()};
    for (int i = 0; !stop.load(std::memory_order_acquire); ++i) {
      Status st = (*service)->Reload(dirs[i % 2]);
      if (!st.ok()) {
        failures.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });
  HammerService(**service, expect, kThreads, kOpsPerThread, &failures);
  stop.store(true, std::memory_order_release);
  reloader.join();
  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace ngram::serve
