// Property tests for the shard router and the serving corruption
// contract:
//   * every key lands in exactly one shard, and that shard answers it;
//   * boundary keys (first/last of each shard), absent keys, and top-k
//     prefixes whose extensions straddle shard boundaries all resolve
//     correctly;
//   * a corrupted shard manifest or a bit-flipped segment yields
//     Corruption naming the path — never a wrong answer.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/brute_force.h"
#include "encoding/sequence.h"
#include "serve/serving_builder.h"
#include "serve/sharded_store.h"
#include "serve/stats_service.h"
#include "testing/test_util.h"
#include "util/temp_dir.h"

namespace ngram::serve {
namespace {

NgramStatistics RandomStats(uint64_t seed) {
  const Corpus corpus = ngram::testing::RandomCorpus(seed, 30, 8, 4, 14);
  NgramStatistics stats = BruteForceCounts(corpus, 2, 4);
  stats.SortCanonical();
  return stats;
}

std::shared_ptr<const ShardedStatsStore> BuildAndOpen(
    const NgramStatistics& stats, const TempDir& dir, uint32_t num_shards,
    size_t cache_bytes = 1 << 20) {
  BuildServingOptions build;
  build.num_shards = num_shards;
  build.block_bytes = 256;  // Many small blocks per shard.
  Status st = BuildServingShards(stats, dir.path().string(), build);
  EXPECT_TRUE(st.ok()) << st.ToString();
  ServingOptions serving;
  serving.cache_bytes = cache_bytes;
  auto store = ShardedStatsStore::Open(dir.path().string(), serving);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return *store;
}

TEST(ShardRouterTest, EveryKeyLandsInExactlyOneShard) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    const NgramStatistics stats = RandomStats(seed);
    for (uint32_t num_shards : {1u, 2u, 5u, 16u}) {
      auto dir = TempDir::Create("shard-router");
      ASSERT_TRUE(dir.ok());
      auto store = BuildAndOpen(stats, *dir, num_shards);

      // Shard key ranges must be disjoint and ordered.
      const Manifest& manifest = store->manifest();
      for (size_t s = 1; s < manifest.shards.size(); ++s) {
        ASSERT_LT(manifest.shards[s - 1].max_key, manifest.shards[s].min_key);
      }

      uint64_t total_records = 0;
      for (const ShardEntry& shard : manifest.shards) {
        ASSERT_GE(shard.num_records, 1u);
        total_records += shard.num_records;
      }
      ASSERT_EQ(total_records, stats.size());

      for (const auto& [seq, cf] : stats.entries) {
        std::string key;
        SequenceCodec::Encode(seq, &key);
        // The router names exactly one shard, and the key is inside that
        // shard's range (so every other shard's range excludes it).
        const int s = store->ShardOf(Slice(key));
        ASSERT_GE(s, 0);
        const ShardEntry& shard = manifest.shards[static_cast<size_t>(s)];
        ASSERT_GE(key, shard.min_key) << SequenceToDebugString(seq);
        ASSERT_LE(key, shard.max_key) << SequenceToDebugString(seq);
        uint64_t count = 0;
        ASSERT_TRUE(store->Count(Slice(key), &count).ok());
        ASSERT_EQ(count, cf) << SequenceToDebugString(seq);
      }
    }
  }
}

TEST(ShardRouterTest, BoundaryAndAbsentKeysResolve) {
  const NgramStatistics stats = RandomStats(11);
  std::map<std::string, uint64_t> by_key;
  for (const auto& [seq, cf] : stats.entries) {
    std::string key;
    SequenceCodec::Encode(seq, &key);
    by_key[key] = cf;
  }
  for (uint32_t num_shards : {1u, 3u, 8u}) {
    auto dir = TempDir::Create("shard-boundary");
    ASSERT_TRUE(dir.ok());
    auto store = BuildAndOpen(stats, *dir, num_shards);

    for (const ShardEntry& shard : store->manifest().shards) {
      // First and last key of every shard — the router's edge cases.
      for (const std::string& key : {shard.min_key, shard.max_key}) {
        uint64_t count = 0;
        ASSERT_TRUE(store->Count(Slice(key), &count).ok());
        ASSERT_EQ(count, by_key.at(key));
      }
      // A key just past a shard's max routes to the next shard (or stays
      // in this one) and answers 0 unless it is actually stored.
      std::string past = shard.max_key;
      past.push_back('\0');
      uint64_t count = 1;
      ASSERT_TRUE(store->Count(Slice(past), &count).ok());
      ASSERT_EQ(count, by_key.count(past) ? by_key.at(past) : 0u);
    }
    // A key before every shard routes to shard 0 and answers 0.
    const std::string before_all(1, '\0');  // Term id 0 is reserved.
    ASSERT_LT(before_all, store->manifest().shards[0].min_key);
    uint64_t count = 1;
    ASSERT_TRUE(store->Count(Slice(before_all), &count).ok());
    ASSERT_EQ(count, 0u);
  }
}

TEST(ShardRouterTest, CrossShardPrefixTopK) {
  const NgramStatistics stats = RandomStats(5);
  // Reference top-k per one-term prefix straight from the table.
  std::map<TermSequence, std::vector<Completion>> expected;
  for (const auto& [seq, cf] : stats.entries) {
    if (seq.size() == 2) {
      expected[{seq[0]}].push_back(Completion{seq[1], cf});
    }
  }
  for (auto& [prefix, completions] : expected) {
    std::sort(completions.begin(), completions.end(),
              [](const Completion& a, const Completion& b) {
                if (a.count != b.count) {
                  return a.count > b.count;
                }
                return a.term < b.term;
              });
  }
  // 16 shards over a small table: most prefixes' extension ranges span a
  // shard boundary, which is exactly what this test is after.
  auto dir = TempDir::Create("shard-prefix");
  ASSERT_TRUE(dir.ok());
  BuildServingOptions build;
  build.num_shards = 16;
  build.block_bytes = 128;
  ASSERT_TRUE(BuildServingShards(stats, dir->path().string(), build).ok());
  auto service = StatsService::Open(dir->path().string());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  ASSERT_GT((*service)->store()->num_shards(), 1u);

  for (const auto& [prefix, completions] : expected) {
    auto got = (*service)->TopKCompletions(prefix, completions.size());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(*got, completions) << SequenceToDebugString(prefix);
  }
}

TEST(ShardRouterTest, CorruptManifestIsNamedNeverMisread) {
  const NgramStatistics stats = RandomStats(3);
  auto dir = TempDir::Create("corrupt-manifest");
  ASSERT_TRUE(dir.ok());
  BuildServingOptions build;
  build.num_shards = 3;
  ASSERT_TRUE(BuildServingShards(stats, dir->path().string(), build).ok());

  const std::string manifest_path = dir->File(kManifestFileName);
  // Flip one byte in the middle of the manifest payload.
  std::string bytes;
  {
    std::ifstream in(manifest_path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() / 2] ^= 0x40;
  {
    std::ofstream out(manifest_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  auto store = ShardedStatsStore::Open(dir->path().string());
  ASSERT_FALSE(store.ok());
  EXPECT_TRUE(store.status().IsCorruption()) << store.status().ToString();
  EXPECT_NE(store.status().ToString().find(kManifestFileName),
            std::string::npos)
      << store.status().ToString();
}

TEST(ShardRouterTest, BitFlippedSegmentIsNamedNeverMisread) {
  const NgramStatistics stats = RandomStats(9);
  auto dir = TempDir::Create("corrupt-segment");
  ASSERT_TRUE(dir.ok());
  BuildServingOptions build;
  build.num_shards = 3;
  build.block_bytes = 256;
  ASSERT_TRUE(BuildServingShards(stats, dir->path().string(), build).ok());

  // Flip one bit in the middle of the middle shard, inside block data.
  const std::string victim = dir->File("shard-00001.run");
  std::string bytes;
  {
    std::ifstream in(victim, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_GT(bytes.size(), 8u);
  bytes[bytes.size() / 2] ^= 0x01;
  {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // Cache disabled so every query re-decodes from the flipped mapping.
  ServingOptions serving;
  serving.cache_bytes = 0;
  auto store = ShardedStatsStore::Open(dir->path().string(), serving);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  size_t corruption_count = 0;
  for (const auto& [seq, cf] : stats.entries) {
    std::string key;
    SequenceCodec::Encode(seq, &key);
    uint64_t count = 0;
    Status st = (*store)->Count(Slice(key), &count);
    if (st.ok()) {
      // The dichotomy: an OK answer must be the right answer.
      ASSERT_EQ(count, cf) << SequenceToDebugString(seq);
    } else {
      ASSERT_TRUE(st.IsCorruption()) << st.ToString();
      ASSERT_NE(st.ToString().find("shard-00001.run"), std::string::npos)
          << st.ToString();
      ++corruption_count;
    }
  }
  EXPECT_GT(corruption_count, 0u);
}

}  // namespace
}  // namespace ngram::serve
