#include "corpus/synthetic.h"

#include <gtest/gtest.h>

namespace ngram {
namespace {

TEST(SyntheticCorpusTest, DeterministicForFixedSeed) {
  const auto options = NytLikeOptions(50, 42);
  const Corpus a = GenerateSyntheticCorpus(options);
  const Corpus b = GenerateSyntheticCorpus(options);
  ASSERT_EQ(a.docs.size(), b.docs.size());
  for (size_t i = 0; i < a.docs.size(); ++i) {
    ASSERT_EQ(a.docs[i].sentences.size(), b.docs[i].sentences.size());
    EXPECT_EQ(a.docs[i].sentences, b.docs[i].sentences);
    EXPECT_EQ(a.docs[i].year, b.docs[i].year);
  }
}

TEST(SyntheticCorpusTest, DifferentSeedsDiffer) {
  const Corpus a = GenerateSyntheticCorpus(NytLikeOptions(20, 1));
  const Corpus b = GenerateSyntheticCorpus(NytLikeOptions(20, 2));
  bool any_diff = false;
  for (size_t i = 0; i < a.docs.size() && !any_diff; ++i) {
    any_diff = a.docs[i].sentences != b.docs[i].sentences;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticCorpusTest, DocumentCountAndIds) {
  const Corpus corpus = GenerateSyntheticCorpus(NytLikeOptions(123, 7));
  ASSERT_EQ(corpus.docs.size(), 123u);
  EXPECT_EQ(corpus.docs.front().id, 1u);
  EXPECT_EQ(corpus.docs.back().id, 123u);
}

TEST(SyntheticCorpusTest, NytSentenceLengthsCalibrated) {
  // Table I: NYT mean 18.96, stddev 14.05. Accept sampling tolerance.
  const Corpus corpus = GenerateSyntheticCorpus(NytLikeOptions(800, 3));
  const CorpusStats stats = corpus.ComputeStats();
  EXPECT_NEAR(stats.sentence_length_mean, 18.96, 2.5);
  EXPECT_NEAR(stats.sentence_length_stddev, 14.05, 5.0);
}

TEST(SyntheticCorpusTest, NytHasTimestampsInRange) {
  const Corpus corpus = GenerateSyntheticCorpus(NytLikeOptions(100, 4));
  for (const auto& doc : corpus.docs) {
    EXPECT_GE(doc.year, 1987);
    EXPECT_LE(doc.year, 2007);
  }
}

TEST(SyntheticCorpusTest, ClueWebHasNoTimestamps) {
  const Corpus corpus = GenerateSyntheticCorpus(ClueWebLikeOptions(50, 4));
  for (const auto& doc : corpus.docs) {
    EXPECT_EQ(doc.year, 0);
  }
}

TEST(SyntheticCorpusTest, PhraseInjectionCreatesLongRepeats) {
  // With phrase classes enabled, some long n-gram must recur across
  // documents — the Section VII-C phenomenon the generators exist for.
  // CW-like boilerplate is the densest class (p = 0.08 over ~10 phrases).
  auto options = ClueWebLikeOptions(1000, 5);
  const Corpus corpus = GenerateSyntheticCorpus(options);
  // Count identical sentences of length >= 20 appearing in >= 3 docs.
  std::map<TermSequence, int> long_sentence_docs;
  for (const auto& doc : corpus.docs) {
    std::set<TermSequence> seen_in_doc;
    for (const auto& s : doc.sentences) {
      if (s.size() >= 20 && seen_in_doc.insert(s).second) {
        ++long_sentence_docs[s];
      }
    }
  }
  int recurring = 0;
  for (const auto& [s, n] : long_sentence_docs) {
    if (n >= 3) {
      ++recurring;
    }
  }
  EXPECT_GT(recurring, 0);
}

TEST(SyntheticCorpusTest, PhraseClassesCanBeDisabled) {
  auto options = NytLikeOptions(30, 6);
  options.phrase_classes.clear();
  const Corpus corpus = GenerateSyntheticCorpus(options);
  EXPECT_EQ(corpus.docs.size(), 30u);
}

TEST(SyntheticCorpusTest, VocabularyGrowsWithCorpus) {
  const auto small = NytLikeOptions(100, 1);
  const auto large = NytLikeOptions(10000, 1);
  EXPECT_LT(small.vocabulary_size, large.vocabulary_size);
}

}  // namespace
}  // namespace ngram
