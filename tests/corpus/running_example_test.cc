#include "corpus/running_example.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"

namespace ngram {
namespace {

TEST(RunningExampleTest, CorpusMatchesPaper) {
  const Corpus corpus = RunningExampleCorpus();
  ASSERT_EQ(corpus.docs.size(), 3u);
  // d1 = <a x b x x>
  EXPECT_EQ(corpus.docs[0].sentences[0],
            (TermSequence{kTermA, kTermX, kTermB, kTermX, kTermX}));
  // d2 = <b a x b x>
  EXPECT_EQ(corpus.docs[1].sentences[0],
            (TermSequence{kTermB, kTermA, kTermX, kTermB, kTermX}));
  // d3 = <x b a x b>
  EXPECT_EQ(corpus.docs[2].sentences[0],
            (TermSequence{kTermX, kTermB, kTermA, kTermX, kTermB}));
}

TEST(RunningExampleTest, TermIdsFollowFrequencyRule) {
  // cf(x)=7 > cf(b)=5 > cf(a)=3, so ids must ascend as frequency descends.
  const UnigramFrequencies freq =
      ComputeUnigramFrequencies(RunningExampleCorpus());
  EXPECT_EQ(freq[kTermX], 7u);
  EXPECT_EQ(freq[kTermB], 5u);
  EXPECT_EQ(freq[kTermA], 3u);
  EXPECT_LT(kTermX, kTermB);
  EXPECT_LT(kTermB, kTermA);
}

TEST(RunningExampleTest, ExpectedCountsMatchBruteForce) {
  // The paper's Section III expected output for tau = 3, sigma = 3.
  const NgramStatistics brute =
      BruteForceCounts(RunningExampleCorpus(), 3, 3);
  const auto expected = RunningExampleExpectedCounts();
  ASSERT_EQ(brute.size(), expected.size());
  for (const auto& [seq, cf] : expected) {
    EXPECT_EQ(brute.FrequencyOf(seq), cf) << RunningExampleDecode(seq);
  }
}

TEST(RunningExampleTest, DecodeHelper) {
  EXPECT_EQ(RunningExampleDecode({kTermA, kTermX, kTermB}), "a x b");
  EXPECT_EQ(RunningExampleDecode({}), "");
}

}  // namespace
}  // namespace ngram
