#include "corpus/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace ngram {
namespace {

TEST(ZipfTest, SamplesStayInRange) {
  ZipfSampler sampler(100, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t r = sampler.Sample(&rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
  }
}

TEST(ZipfTest, RankOneIsMostFrequent) {
  ZipfSampler sampler(1000, 1.0);
  Rng rng(2);
  std::vector<int> counts(1001, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[sampler.Sample(&rng)];
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(ZipfTest, FrequencyRatioTracksExponent) {
  // For s = 1, P(1)/P(10) = 10; accept generous sampling noise.
  ZipfSampler sampler(10000, 1.0);
  Rng rng(3);
  int c1 = 0, c10 = 0;
  for (int i = 0; i < 400000; ++i) {
    const uint64_t r = sampler.Sample(&rng);
    if (r == 1) {
      ++c1;
    } else if (r == 10) {
      ++c10;
    }
  }
  ASSERT_GT(c10, 0);
  const double ratio = static_cast<double>(c1) / c10;
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 16.0);
}

TEST(ZipfTest, DeterministicWithSameRng) {
  ZipfSampler sampler(50, 1.2);
  Rng a(9), b(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.Sample(&a), sampler.Sample(&b));
  }
}

TEST(ZipfTest, SingleElementDomain) {
  ZipfSampler sampler(1, 1.0);
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sampler.Sample(&rng), 1u);
  }
}

}  // namespace
}  // namespace ngram
