// Transport layer unit tests: the InProc and Unix-socket fabrics against
// the Connection/Listener contract, ReadFull's EOF semantics, the wire
// frame codec, and the FaultTransport decorator's seeded single-shot
// fault execution.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/fault_transport.h"
#include "net/inproc_transport.h"
#include "net/socket_transport.h"
#include "net/transport.h"
#include "net/wire.h"
#include "util/temp_dir.h"

namespace ngram::net {
namespace {

/// Accepts one connection on `listener` in a background thread and echoes
/// everything it reads until EOF.
std::thread StartEchoPeer(Listener* listener) {
  return std::thread([listener] {
    std::unique_ptr<Connection> conn;
    if (!listener->Accept(&conn).ok()) {
      return;
    }
    char buf[4096];
    for (;;) {
      size_t got = 0;
      if (!conn->Read(buf, sizeof(buf), &got).ok() || got == 0) {
        return;
      }
      if (!conn->Write(buf, got).ok()) {
        return;
      }
    }
  });
}

/// The fabric-independent contract, run against both transports.
void RoundTrip(Transport* transport, const std::string& address) {
  std::unique_ptr<Listener> listener;
  ASSERT_TRUE(transport->Listen(address, &listener).ok());
  std::thread peer = StartEchoPeer(listener.get());

  std::unique_ptr<Connection> conn;
  ASSERT_TRUE(transport->Connect(address, &conn).ok());
  const std::string message = "hello over the fabric";
  ASSERT_TRUE(conn->Write(message.data(), message.size()).ok());
  std::string echoed(message.size(), '\0');
  ASSERT_TRUE(ReadFull(conn.get(), echoed.data(), echoed.size()).ok());
  EXPECT_EQ(echoed, message);

  conn.reset();  // Peer sees EOF and exits.
  peer.join();
  listener->Shutdown();
}

TEST(InProcTransportTest, EchoRoundTrip) {
  InProcTransport transport;
  RoundTrip(&transport, "echo");
}

TEST(SocketTransportTest, EchoRoundTrip) {
  auto dir = TempDir::Create("sock-echo");
  ASSERT_TRUE(dir.ok());
  SocketTransport transport;
  RoundTrip(&transport, (dir->path() / "echo.sock").string());
}

TEST(InProcTransportTest, ConnectToUnboundAddressIsNotFound) {
  InProcTransport transport;
  std::unique_ptr<Connection> conn;
  EXPECT_TRUE(transport.Connect("nobody", &conn).IsNotFound());
}

TEST(SocketTransportTest, ConnectToUnboundAddressIsNotFound) {
  auto dir = TempDir::Create("sock-none");
  ASSERT_TRUE(dir.ok());
  SocketTransport transport;
  std::unique_ptr<Connection> conn;
  EXPECT_TRUE(
      transport.Connect((dir->path() / "none.sock").string(), &conn)
          .IsNotFound());
}

TEST(InProcTransportTest, DoubleListenIsAlreadyExists) {
  InProcTransport transport;
  std::unique_ptr<Listener> first;
  ASSERT_TRUE(transport.Listen("addr", &first).ok());
  std::unique_ptr<Listener> second;
  EXPECT_EQ(transport.Listen("addr", &second).code(),
            StatusCode::kAlreadyExists);
  // After shutdown the name is reclaimable.
  first->Shutdown();
  EXPECT_TRUE(transport.Listen("addr", &second).ok());
}

TEST(InProcTransportTest, ShutdownUnblocksAccept) {
  InProcTransport transport;
  std::unique_ptr<Listener> listener;
  ASSERT_TRUE(transport.Listen("idle", &listener).ok());
  std::thread waiter([&listener] {
    std::unique_ptr<Connection> conn;
    EXPECT_EQ(listener->Accept(&conn).code(), StatusCode::kCancelled);
  });
  listener->Shutdown();
  waiter.join();
}

TEST(SocketTransportTest, ShutdownUnblocksAccept) {
  auto dir = TempDir::Create("sock-shut");
  ASSERT_TRUE(dir.ok());
  SocketTransport transport;
  std::unique_ptr<Listener> listener;
  ASSERT_TRUE(
      transport.Listen((dir->path() / "s.sock").string(), &listener).ok());
  std::thread waiter([&listener] {
    std::unique_ptr<Connection> conn;
    EXPECT_EQ(listener->Accept(&conn).code(), StatusCode::kCancelled);
  });
  listener->Shutdown();
  waiter.join();
}

TEST(InProcTransportTest, AbortFailsBothEndpoints) {
  InProcTransport transport;
  std::unique_ptr<Listener> listener;
  ASSERT_TRUE(transport.Listen("abort", &listener).ok());
  std::unique_ptr<Connection> accepted;
  std::thread peer([&] { ASSERT_TRUE(listener->Accept(&accepted).ok()); });
  std::unique_ptr<Connection> conn;
  ASSERT_TRUE(transport.Connect("abort", &conn).ok());
  peer.join();

  // A reader parked on the peer is unblocked with an error when the
  // dialing side aborts — the server-shutdown path.
  std::thread reader([&] {
    char byte = 0;
    size_t got = 0;
    EXPECT_FALSE(accepted->Read(&byte, 1, &got).ok());
  });
  conn->Abort();
  reader.join();
  EXPECT_FALSE(conn->Write("x", 1).ok());
  listener->Shutdown();
}

TEST(TransportTest, ReadFullTreatsEarlyEofAsCorruption) {
  InProcTransport transport;
  std::unique_ptr<Listener> listener;
  ASSERT_TRUE(transport.Listen("eof", &listener).ok());
  std::unique_ptr<Connection> accepted;
  std::thread peer([&] { ASSERT_TRUE(listener->Accept(&accepted).ok()); });
  std::unique_ptr<Connection> conn;
  ASSERT_TRUE(transport.Connect("eof", &conn).ok());
  peer.join();

  ASSERT_TRUE(accepted->Write("abc", 3).ok());
  accepted.reset();  // Close after 3 bytes.

  // Mid-frame EOF: got 3 of 8 -> Corruption even with eof_ok.
  char buf[8];
  const Status st = ReadFull(conn.get(), buf, sizeof(buf),
                             /*eof_ok=*/true);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();

  // EOF before the first byte with eof_ok: clean.
  bool clean_eof = false;
  ASSERT_TRUE(
      ReadFull(conn.get(), buf, sizeof(buf), /*eof_ok=*/true, &clean_eof)
          .ok());
  EXPECT_TRUE(clean_eof);
  // ... and without eof_ok: Corruption.
  EXPECT_TRUE(ReadFull(conn.get(), buf, sizeof(buf)).IsCorruption());
  listener->Shutdown();
}

// ------------------------------------------------------------ wire codec

/// One connected pair over the inproc fabric, for codec tests.
struct Pipe {
  InProcTransport transport;
  std::unique_ptr<Listener> listener;
  std::unique_ptr<Connection> client;
  std::unique_ptr<Connection> server;

  Pipe() {
    EXPECT_TRUE(transport.Listen("pipe", &listener).ok());
    std::thread peer([this] {
      EXPECT_TRUE(listener->Accept(&server).ok());
    });
    EXPECT_TRUE(transport.Connect("pipe", &client).ok());
    peer.join();
  }
};

TEST(WireTest, FrameRoundTrip) {
  Pipe pipe;
  const std::string payload = "segment bytes \x00\x01\x02 and more";
  ASSERT_TRUE(
      WriteFrame(pipe.client.get(), MessageType::kFetchData, payload).ok());
  MessageType type{};
  std::string got;
  ASSERT_TRUE(ReadFrame(pipe.server.get(), &type, &got).ok());
  EXPECT_EQ(type, MessageType::kFetchData);
  EXPECT_EQ(got, payload);
}

TEST(WireTest, DamagedPayloadFailsTheFrameCrc) {
  Pipe pipe;
  // Hand-corrupt a frame: encode, flip one payload bit, send raw.
  const std::string payload = "payload under test";
  ASSERT_TRUE(
      WriteFrame(pipe.client.get(), MessageType::kFetchData, payload).ok());
  std::string frame(kFrameHeaderBytes + payload.size(), '\0');
  ASSERT_TRUE(
      ReadFull(pipe.server.get(), frame.data(), frame.size()).ok());
  frame[kFrameHeaderBytes + 4] ^= 0x10;
  ASSERT_TRUE(pipe.server->Write(frame.data(), frame.size()).ok());
  MessageType type{};
  std::string got;
  const Status st = ReadFrame(pipe.client.get(), &type, &got);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find("CRC"), std::string::npos) << st.ToString();
}

TEST(WireTest, DamagedLengthFieldFailsTheHeaderCrcNotHangs) {
  Pipe pipe;
  // Flip a bit in payload_len (header byte 5): without the header CRC the
  // reader would trust the inflated length and block forever waiting for
  // payload bytes the peer never writes.
  const std::string payload = "short";
  ASSERT_TRUE(
      WriteFrame(pipe.client.get(), MessageType::kFetchData, payload).ok());
  std::string frame(kFrameHeaderBytes + payload.size(), '\0');
  ASSERT_TRUE(
      ReadFull(pipe.server.get(), frame.data(), frame.size()).ok());
  frame[5] ^= 0x40;  // payload_len 5 -> 5 + (0x40 << 8).
  ASSERT_TRUE(pipe.server->Write(frame.data(), frame.size()).ok());
  MessageType type{};
  std::string got;
  const Status st = ReadFrame(pipe.client.get(), &type, &got);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find("header CRC"), std::string::npos)
      << st.ToString();
}

TEST(WireTest, GarbageHeaderIsCorruptionNotAHang) {
  Pipe pipe;
  const std::string junk = "this is not a frame header at all";
  ASSERT_TRUE(pipe.client->Write(junk.data(), junk.size()).ok());
  MessageType type{};
  std::string got;
  EXPECT_TRUE(ReadFrame(pipe.server.get(), &type, &got).IsCorruption());
}

TEST(WireTest, PublishRequestRoundTrip) {
  PublishRequest req;
  req.task = 7;
  req.generation = 3;
  WireRun run;
  run.path = "/tmp/some/dir/map-7-a0-000000.run";
  run.block_format = true;
  run.has_crc = false;
  run.crc32 = 0xdeadbeef;
  run.segments = {{0, 128, 4}, {128, 0, 0}, {128, 77, 2}};
  req.runs = {run, run};
  req.runs[1].path = "/tmp/some/dir/map-7-a0-000001.run";

  std::string encoded;
  EncodePublishRequest(req, &encoded);
  PublishRequest decoded;
  ASSERT_TRUE(DecodePublishRequest(encoded, &decoded));
  EXPECT_EQ(decoded.task, req.task);
  EXPECT_EQ(decoded.generation, req.generation);
  ASSERT_EQ(decoded.runs.size(), 2u);
  EXPECT_EQ(decoded.runs[0].path, req.runs[0].path);
  EXPECT_EQ(decoded.runs[1].path, req.runs[1].path);
  EXPECT_EQ(decoded.runs[0].block_format, true);
  EXPECT_EQ(decoded.runs[0].crc32, 0xdeadbeefu);
  ASSERT_EQ(decoded.runs[0].segments.size(), 3u);
  EXPECT_EQ(decoded.runs[0].segments[2].offset, 128u);
  EXPECT_EQ(decoded.runs[0].segments[2].length, 77u);
  EXPECT_EQ(decoded.runs[0].segments[2].num_records, 2u);

  // Truncated payloads decode to false, never to a partial manifest.
  EXPECT_FALSE(DecodePublishRequest(
      Slice(encoded.data(), encoded.size() / 2), &decoded));
}

TEST(WireTest, FetchRequestRoundTrip) {
  FetchRequest req;
  req.task = 11;
  req.generation = 2;
  req.run_index = 5;
  req.partition = 9;
  std::string encoded;
  EncodeFetchRequest(req, &encoded);
  FetchRequest decoded;
  ASSERT_TRUE(DecodeFetchRequest(encoded, &decoded));
  EXPECT_EQ(decoded.task, 11u);
  EXPECT_EQ(decoded.generation, 2u);
  EXPECT_EQ(decoded.run_index, 5u);
  EXPECT_EQ(decoded.partition, 9u);
}

TEST(WireTest, ErrorFramesCarryTheStatusAcross) {
  std::string encoded;
  EncodeError(Status::NotFound("no such partition"), &encoded);
  const Status decoded = DecodeError(encoded);
  EXPECT_TRUE(decoded.IsNotFound());
  EXPECT_NE(decoded.message().find("no such partition"), std::string::npos);
}

// -------------------------------------------------------- fault transport

TEST(FaultTransportTest, PlansAreDeterministicAndNeverNone) {
  for (uint64_t seed = 0; seed < 128; ++seed) {
    const TransportFaultPlan a = TransportFaultPlan::FromSeed(seed);
    const TransportFaultPlan b = TransportFaultPlan::FromSeed(seed);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.bit, b.bit);
    EXPECT_NE(a.kind, TransportFaultPlan::Kind::kNone);
    EXPECT_GE(a.op, 1u);
  }
}

TEST(FaultTransportTest, DropFailsTheTriggeringReadExactlyOnce) {
  InProcTransport base;
  TransportFaultPlan plan;
  plan.kind = TransportFaultPlan::Kind::kDrop;
  plan.op = 2;
  FaultTransport transport(&base, plan);

  std::unique_ptr<Listener> listener;
  ASSERT_TRUE(transport.Listen("drop", &listener).ok());
  std::unique_ptr<Connection> server;
  std::thread peer([&] { ASSERT_TRUE(listener->Accept(&server).ok()); });
  std::unique_ptr<Connection> client;
  ASSERT_TRUE(transport.Connect("drop", &client).ok());
  peer.join();

  ASSERT_TRUE(server->Write("abcdef", 6).ok());
  char byte = 0;
  size_t got = 0;
  // Read 1: passes. Read 2: injected IOError. Read 3+: passes again.
  EXPECT_TRUE(client->Read(&byte, 1, &got).ok());
  EXPECT_FALSE(transport.fault_fired());
  EXPECT_TRUE(client->Read(&byte, 1, &got).IsIOError());
  EXPECT_TRUE(transport.fault_fired());
  EXPECT_TRUE(client->Read(&byte, 1, &got).ok());
  listener->Shutdown();
}

TEST(FaultTransportTest, TruncateEndsTheStreamEarly) {
  InProcTransport base;
  TransportFaultPlan plan;
  plan.kind = TransportFaultPlan::Kind::kTruncate;
  plan.op = 1;
  FaultTransport transport(&base, plan);

  std::unique_ptr<Listener> listener;
  ASSERT_TRUE(transport.Listen("trunc", &listener).ok());
  std::unique_ptr<Connection> server;
  std::thread peer([&] { ASSERT_TRUE(listener->Accept(&server).ok()); });
  std::unique_ptr<Connection> client;
  ASSERT_TRUE(transport.Connect("trunc", &client).ok());
  peer.join();

  ASSERT_TRUE(server->Write("abc", 3).ok());
  char buf[3];
  size_t got = 99;
  ASSERT_TRUE(client->Read(buf, sizeof(buf), &got).ok());
  EXPECT_EQ(got, 0u) << "truncation must look like an orderly EOF";
  EXPECT_TRUE(transport.fault_fired());
  // The bytes are still there afterwards; the fault was single-shot.
  ASSERT_TRUE(client->Read(buf, sizeof(buf), &got).ok());
  EXPECT_EQ(got, 3u);
  listener->Shutdown();
}

TEST(FaultTransportTest, BitFlipDamagesExactlyOneBitSilently) {
  InProcTransport base;
  TransportFaultPlan plan;
  plan.kind = TransportFaultPlan::Kind::kBitFlip;
  plan.op = 1;
  plan.bit = 9;  // Bit 1 of byte 1.
  FaultTransport transport(&base, plan);

  std::unique_ptr<Listener> listener;
  ASSERT_TRUE(transport.Listen("flip", &listener).ok());
  std::unique_ptr<Connection> server;
  std::thread peer([&] { ASSERT_TRUE(listener->Accept(&server).ok()); });
  std::unique_ptr<Connection> client;
  ASSERT_TRUE(transport.Connect("flip", &client).ok());
  peer.join();

  const std::string sent = "AAAA";
  ASSERT_TRUE(server->Write(sent.data(), sent.size()).ok());
  std::string received(sent.size(), '\0');
  ASSERT_TRUE(
      ReadFull(client.get(), received.data(), received.size()).ok());
  EXPECT_TRUE(transport.fault_fired());
  EXPECT_NE(received, sent);
  size_t flipped_bits = 0;
  for (size_t i = 0; i < sent.size(); ++i) {
    unsigned char diff =
        static_cast<unsigned char>(received[i] ^ sent[i]);
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1u);
  listener->Shutdown();
}

}  // namespace
}  // namespace ngram::net
