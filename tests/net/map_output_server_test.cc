// MapOutputServer + ShuffleFetcher tests: the publish/fetch protocol over
// a live server (generation guard, NotFound/OutOfRange/Corruption error
// frames, connection reuse after an error), and Mirror()'s byte-identical
// clone contract with transient-fault retries and clean failure.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mapreduce/counters.h"
#include "mapreduce/sort_buffer.h"
#include "mapreduce/spill_writer.h"
#include "net/fault_transport.h"
#include "net/inproc_transport.h"
#include "net/map_output_server.h"
#include "net/shuffle_fetcher.h"
#include "net/socket_transport.h"
#include "net/wire.h"
#include "util/temp_dir.h"

namespace ngram::net {
namespace {

/// Commits a run file holding exactly `content` via the spill commit
/// protocol (what every served run went through).
void WriteRunFile(const std::string& path, const std::string& content) {
  mr::SpillWriter writer(path);
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.AppendRawBytes(content.data(), content.size()).ok());
  ASSERT_TRUE(writer.Close().ok());
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// One request/response exchange over an open connection.
Status Exchange(Connection* conn, MessageType req_type,
                const std::string& request, MessageType* resp_type,
                std::string* response) {
  NGRAM_RETURN_NOT_OK(WriteFrame(conn, req_type, request));
  return ReadFrame(conn, resp_type, response);
}

class MapOutputServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = TempDir::Create("mos-test");
    ASSERT_TRUE(dir.ok());
    dir_ = std::make_unique<TempDir>(std::move(*dir));
    MapOutputServer::Options options;
    options.transport = &transport_;
    options.address = "server";
    server_ = std::make_unique<MapOutputServer>(options);
    ASSERT_TRUE(server_->Start().ok());
  }

  std::string WorkPath(const std::string& name) const {
    return (dir_->path() / name).string();
  }

  std::unique_ptr<Connection> Dial() {
    std::unique_ptr<Connection> conn;
    EXPECT_TRUE(transport_.Connect("server", &conn).ok());
    return conn;
  }

  /// Publishes one run of `task` at `generation` and returns the content
  /// split into two partitions at `split`.
  void Publish(Connection* conn, uint32_t task, uint32_t generation,
               const std::string& path, size_t total, size_t split) {
    PublishRequest req;
    req.task = task;
    req.generation = generation;
    WireRun run;
    run.path = path;
    run.segments = {{0, split, 1},
                    {split, total - split, 1}};
    req.runs = {run};
    std::string payload;
    EncodePublishRequest(req, &payload);
    MessageType type{};
    std::string response;
    ASSERT_TRUE(
        Exchange(conn, MessageType::kPublishRequest, payload, &type,
                 &response)
            .ok());
    ASSERT_EQ(type, MessageType::kPublishOk);
  }

  /// Sends one fetch request; returns the response frame.
  void Fetch(Connection* conn, uint32_t task, uint32_t generation,
             uint32_t run_index, uint32_t partition, MessageType* type,
             std::string* response) {
    FetchRequest req;
    req.task = task;
    req.generation = generation;
    req.run_index = run_index;
    req.partition = partition;
    std::string payload;
    EncodeFetchRequest(req, &payload);
    ASSERT_TRUE(Exchange(conn, MessageType::kFetchRequest, payload, type,
                         response)
                    .ok());
  }

  std::unique_ptr<TempDir> dir_;
  InProcTransport transport_;
  std::unique_ptr<MapOutputServer> server_;
};

TEST_F(MapOutputServerTest, PublishAndFetchRoundTrip) {
  const std::string content = "partition-zero-bytes|partition-one-bytes";
  const size_t split = 20;
  WriteRunFile(WorkPath("task3.run"), content);

  auto conn = Dial();
  Publish(conn.get(), /*task=*/3, /*generation=*/0, WorkPath("task3.run"),
          content.size(), split);

  MessageType type{};
  std::string response;
  Fetch(conn.get(), 3, 0, 0, 0, &type, &response);
  ASSERT_EQ(type, MessageType::kFetchData);
  EXPECT_EQ(response, content.substr(0, split));
  Fetch(conn.get(), 3, 0, 0, 1, &type, &response);
  ASSERT_EQ(type, MessageType::kFetchData);
  EXPECT_EQ(response, content.substr(split));
  EXPECT_EQ(server_->segments_served(), 2u);
  EXPECT_GE(server_->connections_accepted(), 1u);
}

TEST_F(MapOutputServerTest, StalePublishAndStaleFetchAreOutOfRange) {
  const std::string content = "generation-guard-bytes";
  WriteRunFile(WorkPath("g.run"), content);
  auto conn = Dial();
  Publish(conn.get(), 0, /*generation=*/1, WorkPath("g.run"),
          content.size(), 4);

  // Publishing an older generation must not clobber the newer manifest.
  PublishRequest stale;
  stale.task = 0;
  stale.generation = 0;
  WireRun run;
  run.path = WorkPath("g.run");
  run.segments = {{0, content.size(), 1}};
  stale.runs = {run};
  std::string payload;
  EncodePublishRequest(stale, &payload);
  MessageType type{};
  std::string response;
  ASSERT_TRUE(Exchange(conn.get(), MessageType::kPublishRequest, payload,
                       &type, &response)
                  .ok());
  ASSERT_EQ(type, MessageType::kError);
  EXPECT_EQ(DecodeError(response).code(), StatusCode::kOutOfRange);

  // A fetch naming the retired generation is refused the same way.
  Fetch(conn.get(), 0, 0, 0, 0, &type, &response);
  ASSERT_EQ(type, MessageType::kError);
  EXPECT_EQ(DecodeError(response).code(), StatusCode::kOutOfRange);

  // The current generation still serves — same connection.
  Fetch(conn.get(), 0, 1, 0, 0, &type, &response);
  ASSERT_EQ(type, MessageType::kFetchData);
  EXPECT_EQ(response, content.substr(0, 4));
}

TEST_F(MapOutputServerTest, UnknownTaskRunOrPartitionIsNotFound) {
  const std::string content = "lookup-miss-bytes";
  WriteRunFile(WorkPath("m.run"), content);
  auto conn = Dial();
  Publish(conn.get(), 5, 0, WorkPath("m.run"), content.size(), 8);

  MessageType type{};
  std::string response;
  Fetch(conn.get(), /*task=*/99, 0, 0, 0, &type, &response);
  ASSERT_EQ(type, MessageType::kError);
  EXPECT_TRUE(DecodeError(response).IsNotFound());
  Fetch(conn.get(), 5, 0, /*run_index=*/7, 0, &type, &response);
  ASSERT_EQ(type, MessageType::kError);
  EXPECT_TRUE(DecodeError(response).IsNotFound());
  Fetch(conn.get(), 5, 0, 0, /*partition=*/9, &type, &response);
  ASSERT_EQ(type, MessageType::kError);
  EXPECT_TRUE(DecodeError(response).IsNotFound());
}

TEST_F(MapOutputServerTest, TruncatedRunFileIsCorruptionNamingThePath) {
  const std::string content = "short";
  WriteRunFile(WorkPath("t.run"), content);
  auto conn = Dial();
  // The manifest over-claims: 64 bytes from a 5-byte file.
  Publish(conn.get(), 2, 0, WorkPath("t.run"), /*total=*/64, /*split=*/32);

  MessageType type{};
  std::string response;
  Fetch(conn.get(), 2, 0, 0, 0, &type, &response);
  ASSERT_EQ(type, MessageType::kError);
  const Status st = DecodeError(response);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.message().find(WorkPath("t.run")), std::string::npos)
      << st.ToString();

  // The error left the connection usable for the next request.
  WriteRunFile(WorkPath("ok.run"), content);
  Publish(conn.get(), 4, 0, WorkPath("ok.run"), content.size(), 2);
  Fetch(conn.get(), 4, 0, 0, 1, &type, &response);
  ASSERT_EQ(type, MessageType::kFetchData);
  EXPECT_EQ(response, content.substr(2));
}

// ---------------------------------------------------------------- Mirror

/// Builds a committed two-partition framed run in `dir` and returns its
/// SpillRun descriptor.
mr::SpillRun MakeFramedRun(const std::string& path, int salt) {
  mr::SpillWriter writer(path);
  EXPECT_TRUE(writer.Open().ok());
  mr::RunSegment seg0;
  seg0.offset = 0;
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(writer
                    .Append("key-" + std::to_string(salt) + "-" +
                                std::to_string(i),
                            "value-" + std::to_string(i * salt))
                    .ok());
  }
  seg0.length = writer.bytes_written();
  seg0.num_records = 40;
  mr::RunSegment seg1;
  seg1.offset = writer.bytes_written();
  for (int i = 0; i < 25; ++i) {
    EXPECT_TRUE(
        writer.Append("tail-" + std::to_string(i), "v" + std::to_string(i))
            .ok());
  }
  seg1.length = writer.bytes_written() - seg1.offset;
  seg1.num_records = 25;
  EXPECT_TRUE(writer.Close().ok());
  mr::SpillRun run;
  run.file_path = path;
  run.segments = {seg0, seg1};
  return run;
}

struct MirrorHarness {
  std::unique_ptr<TempDir> dir;
  InProcTransport transport;
  std::unique_ptr<MapOutputServer> server;

  MirrorHarness() {
    auto created = TempDir::Create("mirror-test");
    EXPECT_TRUE(created.ok());
    dir = std::make_unique<TempDir>(std::move(*created));
    MapOutputServer::Options options;
    options.transport = &transport;
    options.address = "server";
    server = std::make_unique<MapOutputServer>(options);
    EXPECT_TRUE(server->Start().ok());
  }

  ShuffleFetcher::Options FetcherOptions(Transport* t) {
    ShuffleFetcher::Options options;
    options.transport = t;
    options.server_address = "server";
    options.work_dir = dir->path().string();
    return options;
  }
};

TEST(ShuffleFetcherTest, MirrorProducesByteIdenticalClones) {
  MirrorHarness h;
  const std::string src0 = (h.dir->path() / "src0.run").string();
  const std::string src1 = (h.dir->path() / "src1.run").string();
  std::vector<mr::SpillRun> runs = {MakeFramedRun(src0, 3),
                                    MakeFramedRun(src1, 7)};

  ShuffleFetcher fetcher(h.FetcherOptions(&h.transport));
  mr::Counters shared;
  std::vector<mr::SpillRun> fetched;
  {
    mr::TaskCounters tc(&shared);
    ASSERT_TRUE(fetcher
                    .Mirror(/*task=*/0, /*generation=*/0, /*attempt_id=*/0,
                            runs, &fetched, &tc)
                    .ok());
  }
  ASSERT_EQ(fetched.size(), 2u);
  uint64_t total_bytes = 0;
  for (size_t i = 0; i < fetched.size(); ++i) {
    EXPECT_NE(fetched[i].file_path, runs[i].file_path);
    // The clone contract: identical bytes, identical extents at identical
    // positions — a reader cannot tell clone from source.
    EXPECT_EQ(FileBytes(fetched[i].file_path),
              FileBytes(runs[i].file_path));
    ASSERT_EQ(fetched[i].segments.size(), runs[i].segments.size());
    for (size_t p = 0; p < fetched[i].segments.size(); ++p) {
      EXPECT_EQ(fetched[i].segments[p].offset, runs[i].segments[p].offset);
      EXPECT_EQ(fetched[i].segments[p].length, runs[i].segments[p].length);
      EXPECT_EQ(fetched[i].segments[p].num_records,
                runs[i].segments[p].num_records);
      total_bytes += fetched[i].segments[p].length;
    }
  }
  EXPECT_EQ(shared.Get(mr::kShuffleFetchBytes), total_bytes);
  EXPECT_EQ(shared.Get(mr::kFetchRetries), 0u);
}

TEST(ShuffleFetcherTest, MirrorAbsorbsATransientDropViaRetry) {
  MirrorHarness h;
  const std::string src = (h.dir->path() / "src.run").string();
  std::vector<mr::SpillRun> runs = {MakeFramedRun(src, 5)};

  TransportFaultPlan plan;
  plan.kind = TransportFaultPlan::Kind::kDrop;
  plan.op = 2;  // Mid-protocol: after the publish response read.
  FaultTransport faulty(&h.transport, plan);
  ShuffleFetcher fetcher(h.FetcherOptions(&faulty));
  mr::Counters shared;
  std::vector<mr::SpillRun> fetched;
  Status st;
  {
    mr::TaskCounters tc(&shared);
    st = fetcher.Mirror(0, 0, 0, runs, &fetched, &tc);
  }
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(faulty.fault_fired());
  EXPECT_GE(shared.Get(mr::kFetchRetries), 1u);
  ASSERT_EQ(fetched.size(), 1u);
  EXPECT_EQ(FileBytes(fetched[0].file_path), FileBytes(src));
}

TEST(ShuffleFetcherTest, MirrorFailsCleanlyWithNoServer) {
  auto dir = TempDir::Create("mirror-noserver");
  ASSERT_TRUE(dir.ok());
  InProcTransport transport;  // Nothing listening.
  ShuffleFetcher::Options options;
  options.transport = &transport;
  options.server_address = "nobody";
  options.work_dir = dir->path().string();
  options.request_retries = 1;
  ShuffleFetcher fetcher(options);

  const std::string src = (dir->path() / "src.run").string();
  std::vector<mr::SpillRun> runs = {MakeFramedRun(src, 2)};
  mr::Counters shared;
  std::vector<mr::SpillRun> fetched;
  Status st;
  {
    mr::TaskCounters tc(&shared);
    st = fetcher.Mirror(0, 0, 0, runs, &fetched, &tc);
  }
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(fetched.empty());
  // No clone files left behind: only the source run remains.
  size_t files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir->path())) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST(ShuffleFetcherTest, MirrorWorksOverUnixSockets) {
  auto dir = TempDir::Create("mirror-sock");
  ASSERT_TRUE(dir.ok());
  SocketTransport transport;
  const std::string address = (dir->path() / "shuffle.sock").string();
  MapOutputServer::Options server_options;
  server_options.transport = &transport;
  server_options.address = address;
  MapOutputServer server(server_options);
  ASSERT_TRUE(server.Start().ok());

  const std::string src = (dir->path() / "src.run").string();
  std::vector<mr::SpillRun> runs = {MakeFramedRun(src, 9)};
  ShuffleFetcher::Options options;
  options.transport = &transport;
  options.server_address = address;
  options.work_dir = dir->path().string();
  ShuffleFetcher fetcher(options);
  mr::Counters shared;
  std::vector<mr::SpillRun> fetched;
  Status st;
  {
    mr::TaskCounters tc(&shared);
    st = fetcher.Mirror(0, 0, 0, runs, &fetched, &tc);
  }
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(fetched.size(), 1u);
  EXPECT_EQ(FileBytes(fetched[0].file_path), FileBytes(src));
  server.Stop();
}

}  // namespace
}  // namespace ngram::net
