// ngram_lint: enforces project invariants a compiler cannot see.
//
// The rules (docs/architecture.md section 9):
//   raw-io       Raw file I/O (fopen/::open/::rename/::unlink/std::remove/
//                fread/fwrite) is confined to the IoEnv implementation —
//                every persisted byte path must be fault-injectable.
//                Scope: src/.
//   stable-sort  std::stable_sort is banned repo-wide (PR 3): it allocates
//                a temp buffer and hides tie-break intent; use std::sort
//                with an explicit deterministic tie-break. Scope: all.
//   random       Nondeterminism (rand/srand/std::random_device) is banned
//                in the runtime — job output must be a pure function of
//                input and config. Seeded generators in bench/tests are
//                fine. Scope: src/.
//   printf       printf-family logging belongs in util/logging (one place
//                to redirect, one lock). snprintf-to-buffer formatting is
//                not logging and stays legal. Scope: src/.
//   socket       Raw socket syscalls (socket/bind/connect/accept/send/
//                recv) are confined to the transport layer (src/net/) —
//                everything else moves bytes through the Transport
//                interface so chaos tests can interpose a FaultTransport.
//                Scope: src/.
//
// Exemptions live in a machine-readable allowlist (default:
// tools/lint/lint_allowlist.txt): one "rule path-suffix" pair per line,
// '#' comments. Diagnostics are "path:line: [rule] message"; the exit
// code is 1 when any finding survives the allowlist, 0 on a clean tree.
//
// Matching is token-based over comment- and string-stripped source: a
// banned token only counts when the preceding character cannot extend an
// identifier (so `snprintf(` never matches `printf(`, and our own
// `Rename(`/`Unlink(` wrappers never match `rename(`/`unlink(`).
//
// Dependency-free by design: exactly the C++ standard library, so the
// binary builds everywhere the project does and CI can run it before any
// third-party checkout.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Rule {
  const char* name;
  /// Path prefix (relative to the root, '/'-separated) the rule applies
  /// under; empty means everywhere.
  const char* scope;
  std::vector<const char*> tokens;
  const char* message;
};

// Token literals are split ("std::" "stable_sort") so this file's own
// code — which is scanned in CI like everything under tools/ — does not
// contain the contiguous banned spelling outside of stripped strings.
const std::vector<Rule>& Rules() {
  static const std::vector<Rule> rules = {
      {"raw-io",
       "src/",
       {"fopen(", "::open(", "::rename(", "::unlink(", "unlink(",
        "std::" "remove(", "fread(", "fwrite("},
       "raw file I/O belongs behind IoEnv (src/mapreduce/io_env.h) so the "
       "byte path stays fault-injectable"},
      {"stable-sort",
       "",
       {"std::" "stable_sort"},
       "std::" "stable_sort is banned: use std::sort with an explicit "
       "deterministic tie-break"},
      {"random",
       "src/",
       {"std::" "random_device", "rand(", "srand("},
       "nondeterminism in the runtime: job output must be a pure function "
       "of input and config"},
      {"printf",
       "src/",
       {"printf(", "fprintf(", "vfprintf(", "puts(", "fputs("},
       "printf-family logging belongs in util/logging"},
      // Both spellings per syscall: the boundary matcher refuses a match
      // whose preceding character is ':', so `::socket(` is claimed only
      // by its own token and `std::bind(` never matches `bind(`.
      {"socket",
       "src/",
       {"socket(", "::socket(", "bind(", "::bind(", "connect(",
        "::connect(", "accept(", "::accept(", "accept4(", "::accept4(",
        "send(", "::send(", "recv(", "::recv("},
       "raw socket syscalls are confined to the transport layer "
       "(src/net/) so every byte path stays fault-injectable via "
       "Transport"},
  };
  return rules;
}

struct AllowEntry {
  std::string rule;
  std::string path_suffix;
};

struct Finding {
  std::string path;  // Relative to the root.
  size_t line;
  const Rule* rule;
};

/// Replaces comments and string/char-literal contents with spaces,
/// keeping newlines so line numbers survive. Handles //, /* */, escape
/// sequences, and leaves everything else byte-for-byte.
std::string StripCommentsAndStrings(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out += c;
        } else if (c == '\'') {
          state = State::kChar;
          out += c;
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += c;
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == quote) {
          state = State::kCode;
          out += c;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      }
    }
  }
  return out;
}

bool IsIdentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// True when `token` occurs in `line` with a non-identifier character
/// (or line start) before it. The preceding character must also not be
/// ':' — that keeps a qualified name from matching a shorter token (so
/// `mr::rename_helper(` cannot match `rename(`, and `::open(` is claimed
/// by its own token rather than by `open(`).
bool MatchesToken(const std::string& line, const char* token) {
  const size_t token_len = std::strlen(token);
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const char before = pos == 0 ? '\0' : line[pos - 1];
    if (!IsIdentChar(before) && before != ':') {
      return true;
    }
    pos += token_len;
  }
  return false;
}

bool Allowed(const std::vector<AllowEntry>& allow, const std::string& rule,
             const std::string& rel_path) {
  for (const AllowEntry& entry : allow) {
    if (entry.rule == rule && rel_path.size() >= entry.path_suffix.size() &&
        rel_path.compare(rel_path.size() - entry.path_suffix.size(),
                         entry.path_suffix.size(),
                         entry.path_suffix) == 0) {
      return true;
    }
  }
  return false;
}

void ScanFile(const fs::path& file, const std::string& rel_path,
              const std::vector<AllowEntry>& allow,
              std::vector<Finding>* findings) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    return;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string code = StripCommentsAndStrings(ss.str());

  size_t line_no = 1;
  size_t start = 0;
  while (start <= code.size()) {
    size_t end = code.find('\n', start);
    if (end == std::string::npos) {
      end = code.size();
    }
    const std::string line = code.substr(start, end - start);
    for (const Rule& rule : Rules()) {
      if (rule.scope[0] != '\0' && rel_path.rfind(rule.scope, 0) != 0) {
        continue;
      }
      if (Allowed(allow, rule.name, rel_path)) {
        continue;
      }
      for (const char* token : rule.tokens) {
        if (MatchesToken(line, token)) {
          findings->push_back(Finding{rel_path, line_no, &rule});
          break;
        }
      }
    }
    if (end == code.size()) {
      break;
    }
    start = end + 1;
    ++line_no;
  }
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

void ScanTree(const fs::path& root, const fs::path& dir,
              const std::vector<AllowEntry>& allow,
              std::vector<Finding>* findings) {
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), it_end;
       !ec && it != it_end; it.increment(ec)) {
    // Deliberately-bad lint fixtures are scanned by the lint test via an
    // explicit root, never as part of the repository tree.
    if (it->is_directory() && it->path().filename() == "fixtures") {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && IsSourceFile(it->path())) {
      const std::string rel =
          fs::relative(it->path(), root, ec).generic_string();
      if (!ec) {
        ScanFile(it->path(), rel, allow, findings);
      }
    }
  }
}

bool LoadAllowlist(const std::string& path, std::vector<AllowEntry>* allow) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ss(line);
    AllowEntry entry;
    if (ss >> entry.rule >> entry.path_suffix) {
      allow->push_back(std::move(entry));
    }
  }
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: ngram_lint --root DIR [--allowlist FILE]\n"
      "\n"
      "Scans src/, tests/, bench/, examples/, and tools/ under DIR for\n"
      "project-invariant violations (raw-io, stable-sort, random, printf,\n"
      "socket).\n"
      "Findings print as 'path:line: [rule] message'; exit status is 1\n"
      "when any finding survives the allowlist.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_arg;
  std::string allowlist_arg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root_arg = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_arg = argv[++i];
    } else {
      return Usage();
    }
  }
  if (root_arg.empty()) {
    return Usage();
  }
  std::error_code ec;
  const fs::path root = fs::canonical(root_arg, ec);
  if (ec) {
    std::fprintf(stderr, "ngram_lint: cannot resolve root '%s': %s\n",
                 root_arg.c_str(), ec.message().c_str());
    return 2;
  }

  std::vector<AllowEntry> allow;
  if (!allowlist_arg.empty() && !LoadAllowlist(allowlist_arg, &allow)) {
    std::fprintf(stderr, "ngram_lint: cannot read allowlist '%s'\n",
                 allowlist_arg.c_str());
    return 2;
  }

  std::vector<Finding> findings;
  for (const char* tree : {"src", "tests", "bench", "examples", "tools"}) {
    const fs::path dir = root / tree;
    if (fs::is_directory(dir, ec)) {
      ScanTree(root, dir, allow, &findings);
    }
  }

  for (const Finding& f : findings) {
    std::printf("%s:%zu: [%s] %s\n", f.path.c_str(), f.line, f.rule->name,
                f.rule->message);
  }
  if (findings.empty()) {
    std::printf("ngram_lint: clean\n");
    return 0;
  }
  std::printf("ngram_lint: %zu finding(s)\n", findings.size());
  return 1;
}
