// Side-by-side comparison of the four methods on the same corpus: verifies
// they produce identical statistics and prints the paper's three measures
// (wallclock, bytes transferred, records) plus job counts — a miniature of
// the Section VII evaluation.
//
//   $ ./compare_methods [num_docs] [tau] [sigma]
#include <cstdio>
#include <cstdlib>

#include "core/runner.h"
#include "corpus/synthetic.h"

int main(int argc, char** argv) {
  using namespace ngram;
  const uint64_t num_docs =
      argc > 1 ? static_cast<uint64_t>(atoll(argv[1])) : 1500;
  const uint64_t tau = argc > 2 ? static_cast<uint64_t>(atoll(argv[2])) : 8;
  const uint32_t sigma =
      argc > 3 ? static_cast<uint32_t>(atoi(argv[3])) : 5;

  printf("NYT-like corpus, %llu docs; tau=%llu sigma=%u\n\n",
         static_cast<unsigned long long>(num_docs),
         static_cast<unsigned long long>(tau), sigma);
  const Corpus corpus =
      GenerateSyntheticCorpus(NytLikeOptions(num_docs, /*seed=*/3));
  const CorpusContext ctx = BuildCorpusContext(corpus);

  printf("%-14s %6s %12s %14s %14s %10s\n", "method", "jobs", "wall ms",
         "records", "bytes", "n-grams");
  NgramStatistics reference;
  bool have_reference = false;
  bool all_agree = true;

  for (Method method : {Method::kNaive, Method::kAprioriScan,
                        Method::kAprioriIndex, Method::kSuffixSigma}) {
    NgramJobOptions options;
    options.method = method;
    options.tau = tau;
    options.sigma = sigma;
    options.num_reducers = 8;
    options.map_slots = 4;
    options.reduce_slots = 4;

    auto run = ComputeNgramStatistics(ctx, options);
    if (!run.ok()) {
      fprintf(stderr, "%s failed: %s\n", MethodName(method),
              run.status().ToString().c_str());
      return 1;
    }
    printf("%-14s %6d %12.0f %14llu %14llu %10llu\n", MethodName(method),
           run->metrics.num_jobs(), run->metrics.total_wallclock_ms(),
           static_cast<unsigned long long>(run->metrics.map_output_records()),
           static_cast<unsigned long long>(run->metrics.map_output_bytes()),
           static_cast<unsigned long long>(run->stats.size()));

    run->stats.SortCanonical();
    if (!have_reference) {
      reference = std::move(run->stats);
      have_reference = true;
    } else if (!run->stats.SameAs(reference)) {
      all_agree = false;
      fprintf(stderr, "MISMATCH: %s disagrees with the reference!\n",
              MethodName(method));
    }
  }

  printf("\n%s\n", all_agree
                       ? "All methods produced identical statistics."
                       : "METHODS DISAGREE - this is a bug.");
  return all_agree ? 0 : 1;
}
