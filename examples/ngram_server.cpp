// ngram_server: interactive query server over a serving directory built
// with `ngram_tool build-serving`. Reads one command per line on stdin and
// answers on stdout — the minimal front end for the sharded serving layer
// (pipe queries in for scripting, or run it interactively).
//
//   $ ngram_tool build-serving corpus.ngs serving/ --shards=4
//   $ ngram_server serving/ [--cache-kb=N] [--order=N]
//
// Protocol (term ids are the corpus encoding's integer ids):
//   count <t1> [t2 ...]      frequency of the n-gram
//   topk <k> [t1 t2 ...]     top-k one-term completions of the prefix
//   ppl <t1> [t2 ...]        stupid-backoff perplexity of the sentence
//   stats                    store + block-cache counters
//   reload                   re-open the directory, atomically swap
//   quit                     exit
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/stats_service.h"

namespace {

using namespace ngram;

int Usage() {
  fprintf(stderr,
          "usage: ngram_server <serving_dir> [--cache-kb=N] [--order=N]\n");
  return 2;
}

bool ParseTerms(std::istringstream* in, TermSequence* terms) {
  terms->clear();
  long long value = 0;
  while (*in >> value) {
    if (value <= 0) {
      return false;  // Term ids are positive; 0 is reserved.
    }
    terms->push_back(static_cast<TermId>(value));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string dir = argv[1];
  serve::ServingOptions options;
  lm::LanguageModelOptions lm_options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--cache-kb=", 0) == 0) {
      options.cache_bytes =
          static_cast<size_t>(atoll(arg.c_str() + 11)) * 1024;
    } else if (arg.rfind("--order=", 0) == 0) {
      lm_options.order = static_cast<uint32_t>(atoi(arg.c_str() + 8));
    } else {
      return Usage();
    }
  }

  auto service = serve::StatsService::Open(dir, options, lm_options);
  if (!service.ok()) {
    fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }
  {
    const auto store = (*service)->store();
    printf("serving %llu n-grams from %zu shard(s) in %s\n",
           static_cast<unsigned long long>(store->total_records()),
           store->num_shards(), dir.c_str());
  }

  std::string line;
  TermSequence terms;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    if (!(in >> command) || command[0] == '#') {
      continue;
    }
    if (command == "quit" || command == "exit") {
      break;
    }
    if (command == "count") {
      if (!ParseTerms(&in, &terms) || terms.empty()) {
        printf("error: count needs positive term ids\n");
        continue;
      }
      auto count = (*service)->Count(terms);
      if (!count.ok()) {
        printf("error: %s\n", count.status().ToString().c_str());
        continue;
      }
      printf("count %s = %llu\n", SequenceToDebugString(terms).c_str(),
             static_cast<unsigned long long>(*count));
    } else if (command == "topk") {
      long long k = 0;
      if (!(in >> k) || k <= 0 || !ParseTerms(&in, &terms)) {
        printf("error: topk needs k >= 1 then prefix term ids\n");
        continue;
      }
      auto completions =
          (*service)->TopKCompletions(terms, static_cast<size_t>(k));
      if (!completions.ok()) {
        printf("error: %s\n", completions.status().ToString().c_str());
        continue;
      }
      printf("topk %s:", SequenceToDebugString(terms).c_str());
      for (const auto& c : *completions) {
        printf(" %u=%llu", c.term, static_cast<unsigned long long>(c.count));
      }
      printf("\n");
    } else if (command == "ppl") {
      if (!ParseTerms(&in, &terms) || terms.empty()) {
        printf("error: ppl needs positive term ids\n");
        continue;
      }
      auto ppl = (*service)->SentencePerplexity(terms);
      if (!ppl.ok()) {
        printf("error: %s\n", ppl.status().ToString().c_str());
        continue;
      }
      printf("ppl %s = %.4f\n", SequenceToDebugString(terms).c_str(), *ppl);
    } else if (command == "stats") {
      const auto store = (*service)->store();
      const kv::BlockCacheStats cache = (*service)->CacheStats();
      printf("stats: records=%llu shards=%zu cache_hits=%llu "
             "cache_misses=%llu cache_evictions=%llu cache_bytes=%zu "
             "hit_ratio=%.3f\n",
             static_cast<unsigned long long>(store->total_records()),
             store->num_shards(),
             static_cast<unsigned long long>(cache.hits),
             static_cast<unsigned long long>(cache.misses),
             static_cast<unsigned long long>(cache.evictions),
             cache.charged_bytes, cache.hit_ratio());
    } else if (command == "reload") {
      Status st = (*service)->Reload();
      if (!st.ok()) {
        printf("error: %s\n", st.ToString().c_str());
        continue;
      }
      printf("reloaded %s\n", dir.c_str());
    } else {
      printf("error: unknown command '%s' (count|topk|ppl|stats|reload|"
             "quit)\n",
             command.c_str());
    }
    fflush(stdout);
  }
  return 0;
}
