// Quickstart: the paper's running example end-to-end.
//
// Builds the three-document collection from Section III, computes all
// n-grams with tau = 3 and sigma = 3 using each of the four methods, and
// prints the statistics plus per-method shuffle metrics.
//
//   $ ./quickstart
#include <cstdio>

#include "core/runner.h"
#include "corpus/running_example.h"

int main() {
  using namespace ngram;

  const Corpus corpus = RunningExampleCorpus();
  printf("Documents (paper Section III):\n");
  for (const auto& doc : corpus.docs) {
    printf("  d%llu = < %s >\n", static_cast<unsigned long long>(doc.id),
           RunningExampleDecode(doc.sentences[0]).c_str());
  }
  printf("\nParameters: tau = 3 (min collection frequency), sigma = 3 (max "
         "length)\n\n");

  const CorpusContext ctx = BuildCorpusContext(corpus);
  const Method methods[] = {Method::kNaive, Method::kAprioriScan,
                            Method::kAprioriIndex, Method::kSuffixSigma};

  for (Method method : methods) {
    NgramJobOptions options;
    options.method = method;
    options.tau = 3;
    options.sigma = 3;
    options.num_reducers = 2;
    options.map_slots = 2;
    options.reduce_slots = 2;

    auto run = ComputeNgramStatistics(ctx, options);
    if (!run.ok()) {
      fprintf(stderr, "%s failed: %s\n", MethodName(method),
              run.status().ToString().c_str());
      return 1;
    }
    run->stats.SortCanonical();
    printf("=== %-13s  (%d job%s, %llu records, %llu bytes shuffled)\n",
           MethodName(method), run->metrics.num_jobs(),
           run->metrics.num_jobs() == 1 ? "" : "s",
           static_cast<unsigned long long>(run->metrics.map_output_records()),
           static_cast<unsigned long long>(run->metrics.map_output_bytes()));
    for (const auto& [seq, cf] : run->stats.entries) {
      printf("    <%s> : %llu\n", RunningExampleDecode(seq).c_str(),
             static_cast<unsigned long long>(cf));
    }
    printf("\n");
  }
  printf("All four methods agree with the paper's expected output:\n"
         "  <a>:3 <b>:5 <x>:7  <a x>:3 <x b>:4  <a x b>:3\n");
  return 0;
}
