// n-gram time series (paper Section VI-B): the "culturomics" aggregation.
// SUFFIX-sigma's counts stack is swapped for a stack of lazily-merged time
// series, yielding per-year occurrence counts for every frequent n-gram
// over an NYT-like corpus spanning 1987-2007.
//
//   $ ./ngram_timeseries [num_docs]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/suffix_timeseries.h"
#include "corpus/synthetic.h"

namespace {

/// Renders counts as a tiny ASCII sparkline.
std::string Sparkline(const ngram::TimeSeries& ts, int year_min,
                      int year_max) {
  static const char* const kLevels[] = {" ", ".", ":", "+", "*", "#"};
  uint64_t peak = 1;
  for (const auto& [year, count] : ts.points) {
    peak = std::max(peak, count);
  }
  std::string out;
  for (int y = year_min; y <= year_max; ++y) {
    const uint64_t c = ts.At(y);
    const size_t level = c == 0 ? 0 : 1 + (c * 4) / peak;
    out += kLevels[std::min<size_t>(level, 5)];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ngram;
  const uint64_t num_docs =
      argc > 1 ? static_cast<uint64_t>(atoll(argv[1])) : 2000;

  printf("Generating NYT-like corpus (%llu docs, 1987-2007)...\n\n",
         static_cast<unsigned long long>(num_docs));
  const Corpus corpus =
      GenerateSyntheticCorpus(NytLikeOptions(num_docs, /*seed=*/21));
  const CorpusContext ctx = BuildCorpusContext(corpus);

  NgramJobOptions options;
  options.method = Method::kSuffixSigma;
  options.tau = 50;
  options.sigma = 3;
  options.num_reducers = 8;

  auto run = RunSuffixSigmaTimeSeries(ctx, options);
  if (!run.ok()) {
    fprintf(stderr, "time-series run failed: %s\n",
            run.status().ToString().c_str());
    return 1;
  }
  printf("Computed time series for %llu n-grams (tau=50, sigma=3) in "
         "%.0f ms.\n\n",
         static_cast<unsigned long long>(run->series.size()),
         run->metrics.total_wallclock_ms());

  // Show the most frequent bigrams and trigrams with their sparklines.
  std::vector<const std::pair<TermSequence, TimeSeries>*> rows;
  for (const auto& row : run->series.rows) {
    if (row.first.size() >= 2) {
      rows.push_back(&row);
    }
  }
  std::sort(rows.begin(), rows.end(), [](const auto* a, const auto* b) {
    return a->second.Total() > b->second.Total();
  });

  printf("%-24s %8s  1987%17s2007\n", "n-gram (term ids)", "total", "");
  for (size_t i = 0; i < rows.size() && i < 15; ++i) {
    printf("%-24s %8llu  [%s]\n",
           SequenceToDebugString(rows[i]->first).c_str(),
           static_cast<unsigned long long>(rows[i]->second.Total()),
           Sparkline(rows[i]->second, 1987, 2007).c_str());
  }
  printf("\nEach column is one year; density reflects that year's "
         "occurrence count.\n");
  return 0;
}
