// Positional-index by-product of APRIORI-INDEX (paper Section III-B: the
// method "produces an inverted index with positional information that can
// be used to quickly determine the locations of a specific frequent
// n-gram").
//
// Builds the index over a small real-text corpus and answers phrase
// lookups with exact (document, position) hits.
//
//   $ ./inverted_index
#include <cstdio>
#include <map>

#include "core/apriori_index.h"
#include "text/corpus_builder.h"

int main() {
  using namespace ngram;

  TextCorpusBuilder builder;
  builder.Add(1, "to be or not to be that is the question.");
  builder.Add(2, "he wanted to be there. not to be left out.");
  builder.Add(3, "the question is hard. to be or not to be.");
  builder.Add(4, "that is the question nobody asked.");
  auto built = builder.Finalize();

  NgramJobOptions options;
  options.method = Method::kAprioriIndex;
  options.tau = 2;
  options.sigma = 6;
  options.apriori_index_k = 2;
  options.num_reducers = 4;

  const CorpusContext ctx = BuildCorpusContext(built.corpus);
  auto result = RunAprioriIndexWithIndex(ctx, options);
  if (!result.ok()) {
    fprintf(stderr, "index build failed: %s\n",
            result.status().ToString().c_str());
    return 1;
  }
  printf("Indexed %llu frequent n-grams (tau=2, sigma=6) from %zu docs.\n\n",
         static_cast<unsigned long long>(result->index.size()),
         built.corpus.docs.size());

  // Index lookup structure.
  std::map<TermSequence, const PostingList*> index;
  for (const auto& [seq, list] : result->index.rows) {
    index[seq] = &list;
  }

  const char* const queries[] = {"to be", "to be or not to be",
                                 "that is the question", "the question",
                                 "left out"};
  Tokenizer tokenizer;
  for (const char* query : queries) {
    const TermSequence encoded =
        built.vocabulary->Encode(tokenizer.Tokenize(query));
    printf("query \"%s\":\n", query);
    auto it = index.find(encoded);
    if (it == index.end()) {
      printf("  (not frequent: fewer than tau=2 occurrences)\n");
      continue;
    }
    for (const auto& posting : it->second->postings) {
      printf("  doc %llu at position(s):",
             static_cast<unsigned long long>(posting.doc_id));
      for (uint32_t p : posting.positions) {
        printf(" %u", p);
      }
      printf("\n");
    }
  }
  return 0;
}
