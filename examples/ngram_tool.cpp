// ngram_tool: command-line driver for the library — generate corpora,
// compute statistics with any method, and inspect results.
//
//   ngram_tool generate (nyt|cw) <docs> <out.ngc> [seed]
//   ngram_tool stats <in.ngc> <out.ngs> --method=suffix-sigma --tau=10
//               [--sigma=5] [--mode=cf|df] [--reducers=8] [--slots=4]
//               [--sort-buffer-kb=N] [--merge-factor=N] [--shuffle-slots=N]
//               [--compress|--no-compress] [--checksum]
//               [--max-task-attempts=N] [--chaos-seed=N]
//               [--fetch-shuffle] [--fetch-transport=inproc|socket]
//               [--shuffle-socket=PATH]
//               [--no-splits] [--maximal|--closed] [--verbose]
//   ngram_tool top <in.ngs> [k]
//   ngram_tool info <in.ngc>
//   ngram_tool build-serving <in.ngs> <out_dir> [--shards=N] [--block-kb=N]
//   ngram_tool serve-shuffle <socket-path>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/maximality.h"
#include "core/runner.h"
#include "core/stats_io.h"
#include "corpus/synthetic.h"
#include "mapreduce/io_env.h"
#include "net/map_output_server.h"
#include "net/socket_transport.h"
#include "serve/serving_builder.h"
#include "text/corpus_io.h"

namespace {

using namespace ngram;

int Usage() {
  fprintf(stderr,
          "usage:\n"
          "  ngram_tool generate (nyt|cw) <docs> <out.ngc> [seed]\n"
          "  ngram_tool stats <in.ngc> <out.ngs> [--method=M] [--tau=N]\n"
          "             [--sigma=N] [--mode=cf|df] [--reducers=N]\n"
          "             [--slots=N] [--sort-buffer-kb=N] [--merge-factor=N]\n"
          "             [--shuffle-slots=N]\n"
          "             [--compress|--no-compress] [--checksum]\n"
          "             [--max-task-attempts=N] [--chaos-seed=N]\n"
          "             [--fetch-shuffle] [--fetch-transport=inproc|socket]\n"
          "             [--shuffle-socket=PATH]\n"
          "             [--no-splits] [--maximal|--closed] [--verbose]\n"
          "  ngram_tool top <in.ngs> [k]\n"
          "  ngram_tool info <in.ngc>\n"
          "  ngram_tool build-serving <in.ngs> <out_dir> [--shards=N]\n"
          "             [--block-kb=N]\n"
          "  ngram_tool serve-shuffle <socket-path>\n"
          "methods: naive, apriori-scan, apriori-index, suffix-sigma\n");
  return 2;
}

bool ParseFlag(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) == 0) {
    *out = arg.substr(prefix.size());
    return true;
  }
  return false;
}

int CmdGenerate(const std::vector<std::string>& args) {
  if (args.size() < 3) {
    return Usage();
  }
  const std::string kind = args[0];
  const uint64_t docs = static_cast<uint64_t>(atoll(args[1].c_str()));
  const std::string out = args[2];
  const uint64_t seed =
      args.size() > 3 ? static_cast<uint64_t>(atoll(args[3].c_str())) : 1;
  SyntheticCorpusOptions options;
  if (kind == "nyt") {
    options = NytLikeOptions(docs, seed);
  } else if (kind == "cw") {
    options = ClueWebLikeOptions(docs, seed);
  } else {
    return Usage();
  }
  const Corpus corpus = GenerateSyntheticCorpus(options);
  Status st = WriteCorpusBinary(corpus, out);
  if (!st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  printf("wrote %llu documents to %s\n",
         static_cast<unsigned long long>(corpus.docs.size()), out.c_str());
  return 0;
}

int CmdStats(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    return Usage();
  }
  const std::string in = args[0];
  const std::string out = args[1];
  NgramJobOptions options;
  options.tau = 10;
  options.sigma = 5;
  enum { kAll, kMaximal, kClosed } filter = kAll;
  bool verbose = false;
  bool have_chaos_seed = false;
  uint64_t chaos_seed = 0;
  for (size_t i = 2; i < args.size(); ++i) {
    std::string value;
    if (ParseFlag(args[i], "method", &value)) {
      if (value == "naive") {
        options.method = Method::kNaive;
      } else if (value == "apriori-scan") {
        options.method = Method::kAprioriScan;
      } else if (value == "apriori-index") {
        options.method = Method::kAprioriIndex;
      } else if (value == "suffix-sigma") {
        options.method = Method::kSuffixSigma;
      } else {
        return Usage();
      }
    } else if (ParseFlag(args[i], "tau", &value)) {
      options.tau = static_cast<uint64_t>(atoll(value.c_str()));
    } else if (ParseFlag(args[i], "sigma", &value)) {
      options.sigma = static_cast<uint32_t>(atoi(value.c_str()));
    } else if (ParseFlag(args[i], "mode", &value)) {
      options.frequency_mode = value == "df" ? FrequencyMode::kDocument
                                             : FrequencyMode::kCollection;
    } else if (ParseFlag(args[i], "reducers", &value)) {
      options.num_reducers = static_cast<uint32_t>(atoi(value.c_str()));
    } else if (ParseFlag(args[i], "slots", &value)) {
      options.map_slots = options.reduce_slots =
          static_cast<uint32_t>(atoi(value.c_str()));
    } else if (ParseFlag(args[i], "sort-buffer-kb", &value)) {
      options.sort_buffer_bytes =
          static_cast<size_t>(atoll(value.c_str())) * 1024;
    } else if (ParseFlag(args[i], "merge-factor", &value)) {
      options.merge_factor = static_cast<uint32_t>(atoi(value.c_str()));
    } else if (ParseFlag(args[i], "shuffle-slots", &value)) {
      options.shuffle_slots = static_cast<uint32_t>(atoi(value.c_str()));
    } else if (args[i] == "--compress") {
      options.compress_runs = true;  // The default; kept for symmetry.
    } else if (args[i] == "--no-compress") {
      options.compress_runs = false;
    } else if (args[i] == "--checksum") {
      options.checksum_spills = true;
    } else if (ParseFlag(args[i], "max-task-attempts", &value)) {
      options.max_task_attempts = static_cast<uint32_t>(atoi(value.c_str()));
    } else if (ParseFlag(args[i], "chaos-seed", &value)) {
      have_chaos_seed = true;
      chaos_seed = static_cast<uint64_t>(atoll(value.c_str()));
    } else if (args[i] == "--fetch-shuffle") {
      options.fetch_shuffle = true;
    } else if (ParseFlag(args[i], "fetch-transport", &value)) {
      options.fetch_shuffle = true;
      if (value == "socket") {
        options.fetch_over_sockets = true;
      } else if (value != "inproc") {
        return Usage();
      }
    } else if (ParseFlag(args[i], "shuffle-socket", &value)) {
      // Two-process mode: dial an external `serve-shuffle` server.
      options.fetch_shuffle = true;
      options.shuffle_server_address = value;
    } else if (args[i] == "--verbose") {
      verbose = true;
    } else if (args[i] == "--no-splits") {
      options.document_splits = false;
    } else if (args[i] == "--maximal") {
      filter = kMaximal;
    } else if (args[i] == "--closed") {
      filter = kClosed;
    } else {
      return Usage();
    }
  }

  // Chaos mode: derive one deterministic fault from the seed and route all
  // shuffle I/O through it. The env must outlive the run below.
  std::unique_ptr<mr::FaultEnv> chaos_env;
  if (have_chaos_seed) {
    chaos_env = std::make_unique<mr::FaultEnv>(
        mr::IoEnv::Default(), mr::FaultPlan::FromSeed(chaos_seed));
    options.io_env = chaos_env.get();
    printf("chaos: seed %llu -> %s\n",
           static_cast<unsigned long long>(chaos_seed),
           chaos_env->plan().ToString().c_str());
  }

  Corpus corpus;
  Status st = ReadCorpusBinary(in, &corpus);
  if (!st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const CorpusContext ctx = BuildCorpusContext(corpus);
  Result<NgramRun> run =
      filter == kMaximal  ? RunSuffixSigmaMaximal(ctx, options)
      : filter == kClosed ? RunSuffixSigmaClosed(ctx, options)
                          : ComputeNgramStatistics(ctx, options);
  if (chaos_env != nullptr) {
    printf("chaos: fault %s (%llu reads, %llu writes, %llu syncs, "
           "%llu renames)\n",
           chaos_env->fault_fired() ? "fired" : "did not fire",
           static_cast<unsigned long long>(chaos_env->reads_seen()),
           static_cast<unsigned long long>(chaos_env->writes_seen()),
           static_cast<unsigned long long>(chaos_env->syncs_seen()),
           static_cast<unsigned long long>(chaos_env->renames_seen()));
  }
  if (!run.ok()) {
    fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  run->stats.SortCanonical();
  st = WriteStatsBinary(run->stats, out);
  if (!st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  printf("%s: %llu n-grams (tau=%llu sigma=%u) in %.0f ms over %d job(s); "
         "%llu records / %llu bytes shuffled -> %s\n",
         MethodName(options.method),
         static_cast<unsigned long long>(run->stats.size()),
         static_cast<unsigned long long>(options.tau), options.sigma,
         run->metrics.total_wallclock_ms(), run->metrics.num_jobs(),
         static_cast<unsigned long long>(run->metrics.map_output_records()),
         static_cast<unsigned long long>(run->metrics.map_output_bytes()),
         out.c_str());
  if (verbose) {
    // Spill/merge observability: how much shuffle data hit disk and how
    // hard the bounded-fan-in merge had to work to read it back.
    const char* counter_names[] = {
        mr::kSpillFiles,          mr::kSpilledRecords,
        mr::kMergePasses,         mr::kIntermediateMergeBytes,
        mr::kMapMergePasses,      mr::kMapIntermediateMergeBytes,
        mr::kReduceMergePasses,   mr::kReduceIntermediateMergeBytes,
        mr::kEarlyMergePasses,    mr::kEarlyMergeBytes,
        mr::kBarrierWaitMs,       mr::kRunBytesRaw,
        mr::kRunBytesWritten,     mr::kCombineInputRecords,
        mr::kCombineOutputRecords, mr::kReduceInputRecords,
        mr::kTaskRetries,         mr::kMapReexecutions,
        mr::kCorruptRunsRecovered, mr::kShuffleFetchBytes,
        mr::kFetchRetries,        mr::kFetchWaitMs,
    };
    printf("  shuffle: sort-buffer=%llu KiB merge-factor=%u "
           "shuffle-slots=%u compress=%s checksum=%s\n",
           static_cast<unsigned long long>(options.sort_buffer_bytes / 1024),
           options.merge_factor, options.shuffle_slots,
           options.compress_runs ? "on" : "off",
           options.checksum_spills ? "on" : "off");
    for (const char* name : counter_names) {
      printf("  %-31s %llu\n", name,
             static_cast<unsigned long long>(
                 run->metrics.TotalCounter(name)));
    }
    const uint64_t raw = run->metrics.TotalCounter(mr::kRunBytesRaw);
    const uint64_t written = run->metrics.TotalCounter(mr::kRunBytesWritten);
    if (raw > 0) {
      printf("  run compression ratio: %.2fx (%.1f%% of raw)\n",
             written > 0 ? static_cast<double>(raw) / written : 0.0,
             100.0 * static_cast<double>(written) / raw);
    }
  }
  return 0;
}

int CmdTop(const std::vector<std::string>& args) {
  if (args.empty()) {
    return Usage();
  }
  const size_t k =
      args.size() > 1 ? static_cast<size_t>(atoll(args[1].c_str())) : 20;
  NgramStatistics stats;
  Status st = ReadStatsBinary(args[0], &stats);
  if (!st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::sort(stats.entries.begin(), stats.entries.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  printf("%llu n-grams total; top %zu:\n",
         static_cast<unsigned long long>(stats.size()), k);
  for (size_t i = 0; i < stats.entries.size() && i < k; ++i) {
    printf("%12llu  %s\n",
           static_cast<unsigned long long>(stats.entries[i].second),
           SequenceToDebugString(stats.entries[i].first).c_str());
  }
  return 0;
}

int CmdInfo(const std::vector<std::string>& args) {
  if (args.empty()) {
    return Usage();
  }
  Corpus corpus;
  Status st = ReadCorpusBinary(args[0], &corpus);
  if (!st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  printf("%s", corpus.ComputeStats().ToString(args[0]).c_str());
  return 0;
}

int CmdBuildServing(const std::vector<std::string>& args) {
  if (args.size() < 2) {
    return Usage();
  }
  const std::string in = args[0];
  const std::string dir = args[1];
  serve::BuildServingOptions options;
  for (size_t i = 2; i < args.size(); ++i) {
    std::string value;
    if (ParseFlag(args[i], "shards", &value)) {
      options.num_shards = static_cast<uint32_t>(atoi(value.c_str()));
    } else if (ParseFlag(args[i], "block-kb", &value)) {
      options.block_bytes = static_cast<size_t>(atoll(value.c_str())) * 1024;
    } else {
      return Usage();
    }
  }
  NgramStatistics stats;
  Status st = ReadStatsBinary(in, &stats);
  if (!st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  st = serve::BuildServingShards(stats, dir, options);
  if (!st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  printf("wrote %llu n-grams into %u shard(s) under %s\n",
         static_cast<unsigned long long>(stats.size()),
         static_cast<uint32_t>(
             std::min<uint64_t>(options.num_shards, stats.size())),
         dir.c_str());
  return 0;
}

// Set by the SIGINT/SIGTERM handler; the serve loop polls it.
volatile std::sig_atomic_t g_serve_stop = 0;

void HandleStopSignal(int /*signum*/) { g_serve_stop = 1; }

int CmdServeShuffle(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    return Usage();
  }
  const std::string socket_path = args[0];
  net::SocketTransport transport;
  net::MapOutputServer::Options options;
  options.transport = &transport;
  options.address = socket_path;
  net::MapOutputServer server(options);
  Status st = server.Start();
  if (!st.ok()) {
    fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  printf("serving shuffle on %s (SIGINT/SIGTERM stops)\n",
         socket_path.c_str());
  fflush(stdout);
  while (g_serve_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
  printf("serve-shuffle: %llu connection(s), %llu segment(s) served\n",
         static_cast<unsigned long long>(server.connections_accepted()),
         static_cast<unsigned long long>(server.segments_served()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "generate") {
    return CmdGenerate(args);
  }
  if (command == "stats") {
    return CmdStats(args);
  }
  if (command == "top") {
    return CmdTop(args);
  }
  if (command == "info") {
    return CmdInfo(args);
  }
  if (command == "build-serving") {
    return CmdBuildServing(args);
  }
  if (command == "serve-shuffle") {
    return CmdServeShuffle(args);
  }
  return Usage();
}
