// Language-model use case (paper Section VII-D, Figure 3a): compute n-gram
// statistics with sigma = 5 and a low tau over an NYT-like collection, then
// train a stupid-backoff language model (Brants et al. — the very scheme
// the paper cites as NAIVE's production user at Google) and evaluate it.
//
//   $ ./language_model [num_docs]
#include <cstdio>
#include <cstdlib>

#include "core/runner.h"
#include "corpus/synthetic.h"
#include "lm/language_model.h"

int main(int argc, char** argv) {
  using namespace ngram;
  const uint64_t num_docs =
      argc > 1 ? static_cast<uint64_t>(atoll(argv[1])) : 2000;

  printf("Generating NYT-like corpus (%llu docs)...\n",
         static_cast<unsigned long long>(num_docs));
  const Corpus corpus =
      GenerateSyntheticCorpus(NytLikeOptions(num_docs, /*seed=*/7));
  const CorpusStats stats = corpus.ComputeStats();
  printf("%s\n", stats.ToString("NYT-like").c_str());

  // The paper's language-model setting: sigma = 5, low tau.
  NgramJobOptions options;
  options.method = Method::kSuffixSigma;
  options.tau = 10;
  options.sigma = 5;
  options.num_reducers = 8;

  auto run = ComputeNgramStatistics(corpus, options);
  if (!run.ok()) {
    fprintf(stderr, "SUFFIX-sigma failed: %s\n",
            run.status().ToString().c_str());
    return 1;
  }
  printf("Computed %llu n-grams (tau=10, sigma=5) in %.0f ms; "
         "%llu records shuffled.\n\n",
         static_cast<unsigned long long>(run->stats.size()),
         run->metrics.total_wallclock_ms(),
         static_cast<unsigned long long>(run->metrics.map_output_records()));

  lm::LanguageModelOptions lm_options;
  lm_options.order = 5;
  auto model = lm::StupidBackoffModel::Build(
      std::move(run->stats), lm_options, stats.term_occurrences);
  if (!model.ok()) {
    fprintf(stderr, "model build failed: %s\n",
            model.status().ToString().c_str());
    return 1;
  }

  // Score a frequent-term sentence against a rare-term one: a usable LM
  // must prefer the former.
  const TermSequence frequent_sentence = {1, 2, 3, 4, 5};
  const TermSequence rare_sentence = {901, 1502, 733, 1999, 420};
  printf("  frequent-term sentence log10 S = %8.3f\n",
         model->SentenceLogScore(frequent_sentence));
  printf("  rare-term     sentence log10 S = %8.3f\n\n",
         model->SentenceLogScore(rare_sentence));

  // Held-out evaluation: perplexity on fresh same-distribution data.
  const Corpus held_out = GenerateSyntheticCorpus(
      NytLikeOptions(std::max<uint64_t>(50, num_docs / 20), /*seed=*/8));
  printf("  perplexity (held-out, same distribution): %.1f\n",
         model->Perplexity(held_out));

  // Next-word prediction from the most frequent bigram context.
  const TermSequence context = {1, 2};
  printf("\n  top continuations of <1 2>:\n");
  for (const auto& [term, score] : model->TopContinuations(context, 5)) {
    printf("    term %-8u S = %.5f\n", term, score);
  }
  return 0;
}
