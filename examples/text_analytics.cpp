// Text-analytics use case (paper Section VII-D, Figure 3b): find long
// recurring fragments of text — quotations, idioms, boilerplate — using a
// large sigma and the maximality extension to keep the result compact.
//
// This example works on real text (a tiny corpus of documents sharing some
// famous quotations) so the discovered n-grams are readable.
//
//   $ ./text_analytics
#include <cstdio>

#include "core/maximality.h"
#include "core/runner.h"
#include "text/corpus_builder.h"

namespace {

const char* const kDocuments[] = {
    "It was the best of times, it was the worst of times. The city slept "
    "while the river kept moving. Ask not what your country can do for "
    "you; ask what you can do for your country.",

    "The committee met on Tuesday. Ask not what your country can do for "
    "you; ask what you can do for your country. Budgets were discussed at "
    "length and nothing was decided.",

    "It was the best of times, it was the worst of times. Markets rose "
    "sharply before the close. Analysts disagreed about the cause.",

    "In his speech he said: ask not what your country can do for you; ask "
    "what you can do for your country. The crowd applauded for minutes.",

    "It was the best of times, it was the worst of times. That opening "
    "line remains among the most quoted in literature, critics say.",

    "Weather tomorrow: rain in the north, sun in the south. Markets rose "
    "sharply before the close. Travel is expected to be slow.",
};

}  // namespace

int main() {
  using namespace ngram;

  TextCorpusBuilder builder;
  uint64_t doc_id = 1;
  for (const char* text : kDocuments) {
    builder.Add(doc_id++, text);
  }
  auto built = builder.Finalize();
  printf("Corpus: %zu documents, %zu distinct terms.\n\n",
         built.corpus.docs.size(), built.vocabulary->size());

  // Analytics setting: long n-grams allowed, recurring at least 3 times;
  // maximality keeps only the full phrases, not all their fragments.
  NgramJobOptions options;
  options.method = Method::kSuffixSigma;
  options.tau = 3;
  options.sigma = 100;
  options.num_reducers = 4;

  const CorpusContext ctx = BuildCorpusContext(built.corpus);
  auto all = ComputeNgramStatistics(ctx, options);
  auto maximal = RunSuffixSigmaMaximal(ctx, options);
  if (!all.ok() || !maximal.ok()) {
    fprintf(stderr, "run failed\n");
    return 1;
  }

  printf("Frequent n-grams (tau=3, sigma=100): %llu total; maximal: %llu "
         "(%.1fx smaller)\n\n",
         static_cast<unsigned long long>(all->stats.size()),
         static_cast<unsigned long long>(maximal->stats.size()),
         static_cast<double>(all->stats.size()) /
             static_cast<double>(maximal->stats.size()));

  // Report maximal n-grams of length >= 4: the recurring quotations.
  std::vector<std::pair<TermSequence, uint64_t>> phrases;
  for (const auto& [seq, cf] : maximal->stats.entries) {
    if (seq.size() >= 4) {
      phrases.emplace_back(seq, cf);
    }
  }
  std::sort(phrases.begin(), phrases.end(),
            [](const auto& a, const auto& b) {
              return a.first.size() > b.first.size();
            });
  printf("Recurring fragments (maximal, length >= 4):\n");
  for (const auto& [seq, cf] : phrases) {
    printf("  [%2zu terms, %llux] \"%s\"\n", seq.size(),
           static_cast<unsigned long long>(cf),
           built.vocabulary->Decode(seq).c_str());
  }
  return 0;
}
